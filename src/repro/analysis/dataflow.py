"""Flow-sensitive ndarray-view provenance and interprocedural write
summaries.

Two analyses power the interprocedural rules:

1. **View provenance** (:func:`view_provenance`): inside one function
   body, which local names are views of which *root* arrays (parameters,
   captured shared state), and whether the view was carved out through a
   partition-derived index.  ``sub = out[start:stop]`` is a
   *partitioned* view of ``out``; ``sub = out[:10]`` or ``flat =
   out.reshape(-1)`` is an *unpartitioned* alias — writing all of it
   from every worker is exactly the hazard RA001 flags for direct
   writes, and RA007 flags when the write happens one call away.

2. **Write summaries** (:func:`write_summaries`): for every function in
   the project, which of its parameters it writes to, and whether the
   written index is derived from other parameters (``depends``) or from
   nothing the caller controls (``fixed`` — a constant row, a whole-
   array ``[:] =`` / ``+=`` store, an ``out=`` destination).  Summaries
   propagate across call edges to a fixed point, so a kernel calling
   ``helper(buf)`` where ``helper`` calls ``fill(buf)`` and ``fill``
   does ``buf[:] = 0`` is still seen to clobber ``buf``.

Both analyses are syntactic over-approximations in the same spirit as
:mod:`repro.analysis.rules.base`: they only claim what they can see, and
the rules built on them flag only provable-shape hazards.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.callgraph import FunctionInfo, Project
from repro.analysis.rules.base import (
    PARTITION_SOURCES,
    names_loaded,
    subscript_indices,
    subscript_root,
)

__all__ = [
    "ViewInfo",
    "view_provenance",
    "ParamWrite",
    "WriteSummary",
    "write_summaries",
    "param_names_of",
]

#: ndarray methods whose result aliases (or may alias) the receiver.
VIEW_METHODS = frozenset({
    "reshape", "transpose", "swapaxes", "view", "ravel", "squeeze",
    "astype",  # astype(copy=False) may alias; conservative
    "unfold", "mode_blocks_view", "matricize",
})

#: numpy-level functions whose result aliases the first argument.
VIEW_FUNCS = frozenset({
    "asarray", "ascontiguousarray", "asfortranarray", "atleast_2d",
    "reshape", "transpose", "swapaxes", "squeeze", "ravel",
})


@dataclass(frozen=True)
class ViewInfo:
    """One may-alias fact: ``name`` may view ``base``.

    ``partitioned`` — the view was taken through a partition-derived
    index somewhere along the chain, so the worker owns it.
    """

    base: str
    partitioned: bool = False


def _expr_views(expr: ast.expr, prov: dict[str, set[ViewInfo]],
                roots: set[str], derived: set[str]) -> set[ViewInfo]:
    """View facts for the value of ``expr``."""

    def of_name(name: str) -> set[ViewInfo]:
        if name in prov:
            return set(prov[name])
        if name in roots:
            return {ViewInfo(name, False)}
        return set()

    if isinstance(expr, ast.Name):
        return of_name(expr.id)
    if isinstance(expr, ast.Subscript):
        inner = _expr_views(expr.value, prov, roots, derived)
        part = any(
            any(n in derived for n in names_loaded(idx))
            for idx in subscript_indices(expr)
        )
        return {ViewInfo(v.base, v.partitioned or part) for v in inner}
    if isinstance(expr, ast.Attribute):
        # a.T and view-method references: alias of the receiver.
        if expr.attr == "T" or expr.attr in VIEW_METHODS:
            return _expr_views(expr.value, prov, roots, derived)
        # ``tensor.data`` style: the attribute aliases the owner.
        if expr.attr in ("data", "base"):
            return _expr_views(expr.value, prov, roots, derived)
        return set()
    if isinstance(expr, ast.Call):
        fn = expr.func
        if isinstance(fn, ast.Attribute):
            if fn.attr in VIEW_METHODS:
                # receiver.reshape(...) aliases the receiver
                views = _expr_views(fn.value, prov, roots, derived)
                part = any(
                    any(n in derived for n in names_loaded(a))
                    for a in expr.args
                )
                return {ViewInfo(v.base, v.partitioned or part)
                        for v in views}
            if fn.attr in VIEW_FUNCS and expr.args:
                return _expr_views(expr.args[0], prov, roots, derived)
        elif isinstance(fn, ast.Name) and fn.id in VIEW_FUNCS and expr.args:
            return _expr_views(expr.args[0], prov, roots, derived)
        return set()
    if isinstance(expr, ast.IfExp):
        return (_expr_views(expr.body, prov, roots, derived)
                | _expr_views(expr.orelse, prov, roots, derived))
    return set()


def view_provenance(body: list[ast.stmt], roots: set[str],
                    derived: set[str]) -> dict[str, set[ViewInfo]]:
    """Name -> view facts, iterated to a fixed point over ``body``.

    ``roots`` are the arrays whose aliases matter (a task context's
    shared names); ``derived`` are partition-derived names (see
    :func:`repro.analysis.rules.base.derived_names`).
    """
    prov: dict[str, set[ViewInfo]] = {}
    for _ in range(8):  # fixed point; bodies are short
        changed = False
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    views = _expr_views(node.value, prov, roots, derived)
                    if not views:
                        continue
                    for t in node.targets:
                        if isinstance(t, ast.Name):
                            if views - prov.get(t.id, set()):
                                prov.setdefault(t.id, set()).update(views)
                                changed = True
                elif (isinstance(node, ast.AnnAssign)
                        and node.value is not None
                        and isinstance(node.target, ast.Name)):
                    views = _expr_views(node.value, prov, roots, derived)
                    if views - prov.get(node.target.id, set()):
                        prov.setdefault(node.target.id, set()).update(views)
                        changed = True
        if not changed:
            break
    return prov


# --------------------------------------------------------------------- #
# Interprocedural write summaries
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ParamWrite:
    """One write a function performs on one of its parameters.

    ``depends`` — parameter names whose values feed the written index.
    Empty ``depends`` means a *fixed* write: the location is the same no
    matter what the caller passes (row 0, the whole array, ...), so two
    workers calling it on the same array always collide.
    """

    param: str
    depends: frozenset[str]
    line: int
    how: str  # "subscript" | "whole-array" | "out="

    @property
    def fixed(self) -> bool:
        return not self.depends


@dataclass
class WriteSummary:
    """All parameter writes of one function (direct + via callees)."""

    fn: FunctionInfo
    writes: set[ParamWrite] = field(default_factory=set)

    def writes_to(self, param: str) -> list[ParamWrite]:
        return [w for w in self.writes if w.param == param]


def param_names_of(fn_node: ast.AST) -> list[str]:
    args = fn_node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if args.vararg:
        names.append(args.vararg.arg)
    names += [a.arg for a in args.kwonlyargs]
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _bound_target_names(target: ast.AST) -> set[str]:
    """Names an assignment target binds (subscript roots included,
    subscript *indices* excluded — those are loads)."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: set[str] = set()
        for e in target.elts:
            out |= _bound_target_names(e)
        return out
    if isinstance(target, ast.Starred):
        return _bound_target_names(target.value)
    if isinstance(target, (ast.Subscript, ast.Attribute)):
        root = subscript_root(target)
        if isinstance(root, ast.Name):
            return {root.id}
    return set()


def _param_labels(fn_node: ast.AST) -> dict[str, frozenset[str]]:
    """Name -> parameters its value derives from, to a fixed point.

    Each parameter starts labelled with itself; assignment and loop
    targets inherit the union of their source's labels.  A name carved
    from a :data:`PARTITION_SOURCES` call keeps whatever parameter
    labels feed that call.
    """
    params = param_names_of(fn_node)
    labels: dict[str, frozenset[str]] = {p: frozenset({p}) for p in params}

    def labels_of(expr: ast.AST) -> frozenset[str]:
        out: set[str] = set()
        for n in names_loaded(expr):
            out |= labels.get(n, frozenset())
        return frozenset(out)

    body = fn_node.body if isinstance(fn_node.body, list) else [fn_node.body]
    for _ in range(8):
        changed = False
        for stmt in body:
            for node in ast.walk(stmt):
                targets: list[ast.AST] = []
                source: ast.AST | None = None
                if isinstance(node, ast.Assign):
                    targets, source = node.targets, node.value
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    if node.value is not None:
                        targets, source = [node.target], node.value
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    targets, source = [node.target], node.iter
                if source is None:
                    continue
                src_labels = labels_of(source)
                if not src_labels:
                    continue
                for t in targets:
                    # Only the *bound* names inherit labels: a plain
                    # target, the elements of a tuple/list target, or the
                    # root of a subscript/attribute store.  Index names
                    # inside a subscript target are loads, not bindings.
                    for name in _bound_target_names(t):
                        if src_labels - labels.get(name, frozenset()):
                            labels[name] = (
                                labels.get(name, frozenset()) | src_labels
                            )
                            changed = True
        if not changed:
            break
    return labels


def _is_full_slice(idx: ast.expr) -> bool:
    """``[:]`` / ``[...]`` — covers the whole array."""
    if isinstance(idx, ast.Slice):
        return idx.lower is None and idx.upper is None and idx.step is None
    if isinstance(idx, ast.Constant) and idx.value is Ellipsis:
        return True
    if isinstance(idx, ast.Tuple):
        return all(_is_full_slice(e) for e in idx.elts)
    return False


def _direct_writes(fn: FunctionInfo) -> set[ParamWrite]:
    """Parameter writes performed directly in ``fn``'s body."""
    node = fn.node
    params = set(param_names_of(node))
    labels = _param_labels(node)
    writes: set[ParamWrite] = set()

    def root_param(expr: ast.expr) -> str | None:
        root = subscript_root(expr)
        # Follow one view hop: ``v = p.reshape(...)`` then ``v[...] = x``
        if isinstance(root, ast.Name) and root.id in params:
            return root.id
        return None

    def index_depends(sub: ast.expr) -> frozenset[str]:
        deps: set[str] = set()
        for idx in subscript_indices(sub):
            for n in names_loaded(idx):
                deps |= labels.get(n, frozenset())
            for inner in ast.walk(idx):
                if (isinstance(inner, ast.Call)
                        and isinstance(inner.func, (ast.Name, ast.Attribute))):
                    fname = (inner.func.id if isinstance(inner.func, ast.Name)
                             else inner.func.attr)
                    if fname in PARTITION_SOURCES:
                        for a in inner.args:
                            for n in names_loaded(a):
                                deps |= labels.get(n, frozenset())
        return frozenset(deps)

    for stmt in ast.walk(node):
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for t in targets:
                if isinstance(t, ast.Subscript):
                    p = root_param(t)
                    if p is None:
                        continue
                    if _is_full_slice(t.slice):
                        writes.add(ParamWrite(p, frozenset(), t.lineno,
                                              "whole-array"))
                    else:
                        writes.add(ParamWrite(p, index_depends(t), t.lineno,
                                              "subscript"))
                elif (isinstance(t, ast.Name) and t.id in params
                        and isinstance(stmt, ast.AugAssign)):
                    writes.add(ParamWrite(t.id, frozenset(), t.lineno,
                                          "whole-array"))
        elif isinstance(stmt, ast.Call):
            for kw in stmt.keywords:
                if kw.arg != "out":
                    continue
                val = kw.value
                if isinstance(val, ast.Name) and val.id in params:
                    writes.add(ParamWrite(val.id, frozenset(), val.lineno,
                                          "out="))
                elif isinstance(val, ast.Subscript):
                    p = root_param(val)
                    if p is None:
                        continue
                    deps = index_depends(val)
                    if _is_full_slice(val.slice) or not deps:
                        writes.add(ParamWrite(p, frozenset(), val.lineno,
                                              "out="))
                    else:
                        writes.add(ParamWrite(p, deps, val.lineno, "out="))
    return writes


def _map_args(call: ast.Call, callee_node: ast.AST) -> dict[str, ast.expr]:
    """Callee parameter name -> caller argument expression."""
    params = param_names_of(callee_node)
    args = callee_node.args
    # Drop a leading ``self``-style param only for methods; project
    # functions here are module-level, so map positionally.
    mapping: dict[str, ast.expr] = {}
    positional = [a.arg for a in args.posonlyargs + args.args]
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if i < len(positional):
            mapping[positional[i]] = arg
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in params:
            mapping[kw.arg] = kw.value
    return mapping


def write_summaries(project: Project,
                    max_rounds: int = 4) -> dict[str, WriteSummary]:
    """Per-function write summaries, propagated over the call graph.

    Round 0 collects direct writes; each later round folds callee
    summaries into callers (a call passing parameter ``p`` — or a view
    of it — into a written parameter of the callee makes ``p`` written
    here too, with ``depends`` translated through the argument map).
    """
    summaries = {
        q: WriteSummary(fn, set(_direct_writes(fn)))
        for q, fn in project.functions.items()
    }
    for _ in range(max_rounds):
        changed = False
        for q, summary in summaries.items():
            fn = summary.fn
            params = set(param_names_of(fn.node))
            labels = _param_labels(fn.node)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = project.resolve_call(fn.module, node)
                if callee is None or callee.qualname == q:
                    continue
                callee_sum = summaries.get(callee.qualname)
                if callee_sum is None or not callee_sum.writes:
                    continue
                arg_map = _map_args(node, callee.node)
                for w in callee_sum.writes:
                    arg = arg_map.get(w.param)
                    if arg is None:
                        continue
                    root = subscript_root(arg)
                    if not (isinstance(root, ast.Name) and root.id in params):
                        continue
                    # The argument is (a view of) our parameter.  If the
                    # argument expression itself is subscripted, the
                    # callee only sees that sub-block — its index deps
                    # are then relative to the block, fold them in.
                    deps: set[str] = set()
                    if isinstance(arg, ast.Subscript):
                        for idx in subscript_indices(arg):
                            for n in names_loaded(idx):
                                deps |= labels.get(n, frozenset())
                    for dep_param in w.depends:
                        dep_arg = arg_map.get(dep_param)
                        if dep_arg is not None:
                            for n in names_loaded(dep_arg):
                                deps |= labels.get(n, frozenset())
                    lifted = ParamWrite(
                        root.id, frozenset(deps), node.lineno,
                        f"call:{callee.name}",
                    )
                    if lifted not in summary.writes:
                        summary.writes.add(lifted)
                        changed = True
        if not changed:
            break
    return summaries
