"""repro.analysis — machine-checked parallel invariants.

Two layers (see ``docs/analysis.md``):

* **Static lint** (:mod:`repro.analysis.lint` + :mod:`repro.analysis.rules`)
  — AST rules RA001–RA006 enforcing the partition, layout, and shm-lifetime
  contracts of the paper's Algorithms 1/3/4 as this repo implements them.
  CLI: ``python -m repro.analysis [paths]`` or the ``repro-analysis``
  console script.
* **Runtime sanitizer** (:mod:`repro.analysis.sanitizer`) — an opt-in
  write-set race detector for thread-backend pool regions plus shm
  bounds checks, enabled via ``REPRO_SANITIZE=1`` or :func:`sanitize`.
"""

from repro.analysis.lint import (
    Finding,
    collect_files,
    lint_file,
    lint_paths,
    render_json,
    render_text,
)
from repro.analysis.rules import ALL_RULES, get_rules
from repro.analysis.sanitizer import (
    NULL_SANITIZER,
    RaceError,
    Sanitizer,
    SanitizerError,
    WriteLogArray,
    get_sanitizer,
    is_sanitizing,
    sanitize,
)

__all__ = [
    "Finding",
    "collect_files",
    "lint_file",
    "lint_paths",
    "render_json",
    "render_text",
    "ALL_RULES",
    "get_rules",
    "NULL_SANITIZER",
    "RaceError",
    "Sanitizer",
    "SanitizerError",
    "WriteLogArray",
    "get_sanitizer",
    "is_sanitizing",
    "sanitize",
]
