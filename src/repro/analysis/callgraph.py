"""Project-level module, import, and call graph for the analyzer.

The per-file rules (RA001–RA006, RA008) see one ``ast.Module`` at a time;
the project rules (RA007, RA009, RA010) need to follow a numpy view
created in ``cp_als`` through a helper in another module into a ``_k_*``
kernel, or to check that every branch of the dispatch table in
``repro.core.dispatch`` is matched by an entry in the autotuner's
candidate set.  This module provides the shared substrate:

* :class:`ModuleInfo` — one parsed source file: dotted module name,
  import map (local name -> fully qualified target), and the function
  definitions it contains;
* :class:`Project` — the set of modules under analysis, a
  name-resolution service (``resolve_call``), and the induced call graph
  (``callees`` / ``reachable``);
* **auxiliary sources** — when the scanned tree sits inside a repository
  (detected by walking up to ``pyproject.toml``/``setup.py``), the
  project also loads the differential-oracle test module and the
  Markdown docs, so RA010 can cross-reference contract surfaces that
  live outside ``src/repro``.

Resolution is purely syntactic and deliberately conservative: only
plain-name calls (``helper(...)``), imported-name calls (``from m import
helper``), and module-attribute calls (``import m; m.helper(...)``) are
resolved; method calls on objects are not.  An unresolved call simply
contributes no edge — the project rules err quiet, like the per-file
rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "DispatchTable",
    "extract_dispatch_tables",
    "module_name_for",
    "find_repo_root",
]

#: Markers that identify a repository root when walking up from a
#: scanned path (for auxiliary cross-reference sources).
_ROOT_MARKERS = ("pyproject.toml", "setup.py", ".git")


@dataclass
class FunctionInfo:
    """One function/async-function definition in the project."""

    qualname: str  # "repro.core.dispatch._run" (nested: outer.inner)
    name: str
    module: "ModuleInfo"
    node: ast.AST

    @property
    def path(self) -> str:
        return self.module.path

    @property
    def line(self) -> int:
        return self.node.lineno


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, walking up through ``__init__.py``
    packages.  A file outside any package is its bare stem."""
    path = Path(path).resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    cur = path.parent
    while (cur / "__init__.py").exists():
        parts.insert(0, cur.name)
        parent = cur.parent
        if parent == cur:
            break
        cur = parent
    return ".".join(parts) if parts else path.stem


def find_repo_root(start: Path, max_up: int = 8) -> Path | None:
    """Nearest ancestor of ``start`` carrying a repo-root marker."""
    cur = Path(start).resolve()
    if cur.is_file():
        cur = cur.parent
    for _ in range(max_up):
        if any((cur / m).exists() for m in _ROOT_MARKERS):
            return cur
        parent = cur.parent
        if parent == cur:
            return None
        cur = parent
    return None


class ModuleInfo:
    """One parsed module: AST plus import map and function table."""

    def __init__(self, path: Path, name: str, source: str,
                 tree: ast.Module) -> None:
        self.path = str(path)
        self.name = name
        self.source = source
        self.tree = tree
        #: local name -> fully qualified target ("np" -> "numpy",
        #: "mttkrp_onestep" -> "repro.core.mttkrp_onestep.mttkrp_onestep")
        self.imports: dict[str, str] = {}
        #: dotted-in-module name ("outer.inner") -> FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}
        self._index()

    def _index(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        # ``import repro.core.krp`` binds "repro" but the
                        # dotted path is what attribute calls resolve by.
                        self.imports[head] = head
                        self.imports[alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Relative import: resolve against this module's package.
                    anchor_parts = self.name.split(".")[: -node.level]
                    anchor = ".".join(anchor_parts)
                    base = f"{anchor}.{base}".strip(".") if base else anchor
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}" if base else alias.name
        # Functions, with dotted names for nesting.
        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    dotted = f"{prefix}{child.name}"
                    info = FunctionInfo(
                        qualname=f"{self.name}.{dotted}",
                        name=child.name, module=self, node=child,
                    )
                    self.functions.setdefault(dotted, info)
                    visit(child, f"{dotted}.")
                elif isinstance(child, (ast.ClassDef,)):
                    visit(child, f"{prefix}{child.name}.")
                else:
                    visit(child, prefix)

        visit(self.tree, "")


class Project:
    """A set of parsed modules plus the induced call graph."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}  # by dotted name
        self.modules_by_path: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}  # by qualname
        #: Auxiliary modules (oracle tests, ...) — cross-referenced by
        #: project rules but never linted themselves.
        self.aux_modules: list[ModuleInfo] = []
        #: Concatenated Markdown documentation text (docs surface).
        self.docs_text: str = ""
        self._edges: dict[str, set[str]] | None = None

    # -- loading -------------------------------------------------------- #

    @classmethod
    def load(
        cls,
        files: list[Path],
        *,
        sources: dict[str, str] | None = None,
        detect_root: bool = True,
    ) -> "Project":
        """Parse ``files`` into a project.

        ``sources`` optionally supplies pre-read file contents (keyed by
        ``str(path)``) so the incremental cache can avoid double reads.
        With ``detect_root``, auxiliary cross-reference sources (the
        differential-oracle test module, ``docs/*.md``, ``README.md``)
        are loaded from the enclosing repository, when one is found.
        """
        proj = cls()
        for f in files:
            f = Path(f)
            src = (sources or {}).get(str(f))
            if src is None:
                try:
                    src = f.read_text(encoding="utf-8")
                except OSError:
                    continue
            proj.add_module(f, src)
        if detect_root and files:
            root = find_repo_root(Path(files[0]))
            if root is not None:
                proj.load_aux(root)
        return proj

    def add_module(self, path: Path, source: str) -> ModuleInfo | None:
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            return None
        mod = ModuleInfo(path, module_name_for(path), source, tree)
        self.modules[mod.name] = mod
        self.modules_by_path[str(Path(path).resolve())] = mod
        for info in mod.functions.values():
            self.functions[info.qualname] = info
        self._edges = None
        return mod

    def load_aux(self, root: Path) -> None:
        """Load cross-reference sources from the repository root."""
        for pattern in ("tests/test_oracle*.py",):
            for f in sorted(root.glob(pattern)):
                try:
                    src = f.read_text(encoding="utf-8")
                    tree = ast.parse(src, filename=str(f))
                except (OSError, SyntaxError):
                    continue
                self.aux_modules.append(
                    ModuleInfo(f, f.stem, src, tree)
                )
        chunks: list[str] = []
        for f in sorted(root.glob("docs/*.md")) + [root / "README.md"]:
            try:
                chunks.append(f.read_text(encoding="utf-8"))
            except OSError:
                continue
        self.docs_text = "\n".join(chunks)

    # -- name resolution ------------------------------------------------ #

    def resolve_name(self, module: ModuleInfo, name: str) -> FunctionInfo | None:
        """Function a bare name refers to inside ``module``."""
        if name in module.functions:
            return module.functions[name]
        target = module.imports.get(name)
        if target is None:
            return None
        return self._function_by_qualname(target)

    def resolve_call(self, module: ModuleInfo,
                     call: ast.Call) -> FunctionInfo | None:
        """Project function a call expression refers to, if resolvable."""
        fn = call.func
        if isinstance(fn, ast.Name):
            return self.resolve_name(module, fn.id)
        if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
            # ``alias.helper(...)`` where alias is an imported module.
            target_mod = module.imports.get(fn.value.id)
            if target_mod is not None:
                return self._function_by_qualname(f"{target_mod}.{fn.attr}")
        return None

    def _function_by_qualname(self, qualname: str) -> FunctionInfo | None:
        info = self.functions.get(qualname)
        if info is not None:
            return info
        # ``from pkg import mod`` then ``mod.fn`` resolves to
        # ``pkg.mod.fn`` only through the module table:
        mod_name, _, fn_name = qualname.rpartition(".")
        mod = self.modules.get(mod_name)
        if mod is not None:
            return mod.functions.get(fn_name)
        return None

    # -- call graph ----------------------------------------------------- #

    def callees(self, fn: FunctionInfo) -> list[FunctionInfo]:
        """Direct project-internal callees of ``fn`` (conservative)."""
        out: dict[str, FunctionInfo] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                target = self.resolve_call(fn.module, node)
                if target is not None and target.qualname != fn.qualname:
                    out[target.qualname] = target
        return list(out.values())

    def reachable(self, fn: FunctionInfo) -> list[FunctionInfo]:
        """``fn`` plus the transitive closure of its project callees."""
        seen: dict[str, FunctionInfo] = {fn.qualname: fn}
        frontier = [fn]
        while frontier:
            cur = frontier.pop()
            for nxt in self.callees(cur):
                if nxt.qualname not in seen:
                    seen[nxt.qualname] = nxt
                    frontier.append(nxt)
        return list(seen.values())


@dataclass
class DispatchTable:
    """A ``method == "literal" -> kernel(...)`` if-chain dispatch table."""

    module: ModuleInfo
    function: FunctionInfo
    entries: dict[str, FunctionInfo] = field(default_factory=dict)
    lines: dict[str, int] = field(default_factory=dict)


def _str_eq_test(test: ast.expr) -> str | None:
    """The string literal of a ``<name> == "lit"`` comparison, if any."""
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and isinstance(test.left, ast.Name)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and isinstance(test.comparators[0].value, str)):
        return test.comparators[0].value
    return None


def _returned_call(stmts: list[ast.stmt]) -> ast.Call | None:
    for stmt in stmts:
        if (isinstance(stmt, ast.Return)
                and isinstance(stmt.value, ast.Call)):
            return stmt.value
    return None


def extract_dispatch_tables(project: Project,
                            module: ModuleInfo) -> list[DispatchTable]:
    """Dispatch tables in ``module``: functions containing two or more
    ``if method == "lit": return kernel(...)`` branches whose kernels
    resolve to project functions.  A trailing ``assert method == "lit"``
    followed by ``return kernel(...)`` contributes a final entry."""
    tables: list[DispatchTable] = []
    for fn in module.functions.values():
        entries: dict[str, FunctionInfo] = {}
        lines: dict[str, int] = {}
        body = getattr(fn.node, "body", [])
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.If):
                lit = _str_eq_test(stmt.test)
                if lit is None:
                    continue
                call = _returned_call(stmt.body)
                if call is None:
                    continue
                target = project.resolve_call(module, call)
                if target is not None:
                    entries[lit] = target
                    lines[lit] = stmt.lineno
        # ``assert method == "baseline"`` + ``return mttkrp_baseline(...)``
        for i, stmt in enumerate(body):
            if isinstance(stmt, ast.Assert):
                lit = _str_eq_test(stmt.test)
                if lit is not None:
                    call = _returned_call(body[i + 1:i + 2])
                    if call is not None:
                        target = project.resolve_call(module, call)
                        if target is not None:
                            entries[lit] = target
                            lines[lit] = stmt.lineno
        if len(entries) >= 2:
            tables.append(DispatchTable(module, fn, entries, lines))
    return tables
