"""Incremental result cache for the analyzer.

Re-linting an unchanged tree should cost file reads and hash checks, not
AST parses and interprocedural fixpoints.  The cache stores, per file,
the content hash and the findings produced last time; per project, a
digest over every linted file *plus the auxiliary cross-reference
sources* (oracle tests, docs — RA010 reads them, so editing
``docs/analysis.md`` must invalidate the project pass even though no
``.py`` file changed).

The cache is keyed by the active rule-set signature: running with
``--rules RA001`` and then without must not serve each other's results.
A version or signature mismatch silently discards the stored state —
the cache is an accelerator, never a source of truth.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from repro.analysis.callgraph import find_repo_root

__all__ = ["LintCache", "DEFAULT_CACHE_PATH"]

_VERSION = 1

#: Default on-disk location, relative to the working directory.
DEFAULT_CACHE_PATH = ".repro-analysis-cache.json"


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class LintCache:
    """Content-hash keyed cache of per-file and project-pass findings."""

    def __init__(self, path: str | Path, rules_key: str) -> None:
        self.path = Path(path)
        self.rules_key = rules_key
        self._files: dict[str, dict] = {}
        self._project: dict | None = None
        self.hits = 0
        self.misses = 0
        self._load()

    @staticmethod
    def rules_signature(rules, project_rules) -> str:
        ids = sorted(r.id for r in rules) + sorted(r.id for r in project_rules)
        return _sha256(",".join(ids))[:16]

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (data.get("version") != _VERSION
                or data.get("rules_key") != self.rules_key):
            return
        self._files = data.get("files", {})
        self._project = data.get("project")

    def save(self) -> None:
        payload = {
            "version": _VERSION,
            "rules_key": self.rules_key,
            "files": self._files,
            "project": self._project,
        }
        self.path.write_text(json.dumps(payload), encoding="utf-8")

    # -- per-file results ----------------------------------------------- #

    def get_file(self, path: str, source: str):
        from repro.analysis.lint import Finding

        entry = self._files.get(path)
        if entry is None or entry["hash"] != _sha256(source):
            self.misses += 1
            return None
        self.hits += 1
        return [Finding(**f) for f in entry["findings"]]

    def put_file(self, path: str, source: str, findings) -> None:
        self._files[path] = {
            "hash": _sha256(source),
            "findings": [asdict(f) for f in findings],
        }

    # -- project pass --------------------------------------------------- #

    def project_digest(self, files: list[Path],
                       sources: dict[str, str]) -> str:
        """Digest of everything the project rules can observe."""
        h = hashlib.sha256()
        for f in files:
            h.update(str(f).encode())
            h.update(_sha256(sources.get(str(f), "")).encode())
        # Aux sources mirror Project.load_aux's glob set.
        root = find_repo_root(Path(files[0])) if files else None
        if root is not None:
            aux = sorted(root.glob("tests/test_oracle*.py"))
            aux += sorted(root.glob("docs/*.md"))
            aux.append(root / "README.md")
            for f in aux:
                try:
                    h.update(str(f).encode())
                    h.update(_sha256(f.read_text(encoding="utf-8")).encode())
                except OSError:
                    continue
        return h.hexdigest()

    def get_project(self, digest: str):
        from repro.analysis.lint import Finding

        entry = self._project
        if entry is None or entry["digest"] != digest:
            self.misses += 1
            return None
        self.hits += 1
        return [Finding(**f) for f in entry["findings"]]

    def put_project(self, digest: str, findings) -> None:
        self._project = {
            "digest": digest,
            "findings": [asdict(f) for f in findings],
        }
