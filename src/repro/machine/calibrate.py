"""Fit a :class:`~repro.machine.model.MachineModel` to the host machine.

Three microbenchmarks, all taking well under a second at default sizes:

* STREAM scale (read + write of a large array) -> ``bw_single_gbs`` (and,
  with multiple threads available, the saturated bandwidth);
* large square DGEMM -> ``peak_gflops_per_core * gemm_efficiency``
  (reported as achieved GFLOP/s; the split between the two factors is set
  by assuming the nominal efficiency);
* skinny DGEMM with 25 columns -> validates the narrow-panel penalty term.

The calibrated model lets the prediction machinery produce *host-scale*
figures next to the paper-machine figures, and the test-suite uses it to
check that model predictions land within a loose factor of measured times
for the kernels above (a sanity check on the model form, not a promise of
cycle accuracy).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.machine.model import MachineModel

__all__ = [
    "calibrate_host_model",
    "measure_stream_bandwidth",
    "measure_gemm_gflops",
    "detect_cache_bytes",
]


def detect_cache_bytes(default: float = float(8 << 20)) -> float:
    """Last-level cache capacity in bytes, read from sysfs where available.

    Scans ``/sys/devices/system/cpu/cpu0/cache/index*`` for the largest
    unified/data cache level (Linux); any failure — other platforms,
    containers that mask sysfs — falls back to ``default`` (a conservative
    8 MiB).  Feeds :attr:`~repro.machine.model.MachineModel.cache_bytes`,
    which the blocked MTTKRP kernels use for tile sizing.
    """
    base = "/sys/devices/system/cpu/cpu0/cache"
    best = 0.0
    try:
        for entry in sorted(os.listdir(base)):
            if not entry.startswith("index"):
                continue
            try:
                with open(os.path.join(base, entry, "type")) as fh:
                    kind = fh.read().strip()
                if kind not in ("Unified", "Data"):
                    continue
                with open(os.path.join(base, entry, "size")) as fh:
                    text = fh.read().strip()
            except OSError:
                continue
            scale = 1
            if text.endswith("K"):
                scale, text = 1024, text[:-1]
            elif text.endswith("M"):
                scale, text = 1024 * 1024, text[:-1]
            best = max(best, float(int(text) * scale))
    except OSError:
        pass
    return best if best > 0 else float(default)


def _best_of(fn, repeats: int = 3) -> float:
    """Minimum wall time of ``repeats`` runs (standard microbench practice)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_stream_bandwidth(entries: int = 8_000_000, repeats: int = 3) -> float:
    """Measured scale-kernel bandwidth in GB/s (read + write traffic)."""
    entries = int(entries)
    if entries <= 0:
        raise ValueError("entries must be positive")
    src = np.ones(entries)
    dst = np.empty(entries)

    def kernel() -> None:
        np.multiply(src, 1.000001, out=dst)

    seconds = _best_of(kernel, repeats)
    return (2 * entries * 8) / seconds / 1e9


def measure_gemm_gflops(
    m: int = 768, n: int = 768, k: int = 768, repeats: int = 3
) -> float:
    """Measured DGEMM rate in GFLOP/s for an ``m x k . k x n`` multiply."""
    rng = np.random.default_rng(0)
    A = rng.random((m, k))
    B = rng.random((k, n))
    out = np.empty((m, n), order="C")

    def kernel() -> None:
        np.matmul(A, B, out=out)

    seconds = _best_of(kernel, repeats)
    return (2.0 * m * n * k) / seconds / 1e9


def calibrate_host_model(
    stream_entries: int = 8_000_000,
    gemm_size: int = 768,
    assumed_gemm_efficiency: float = 0.85,
) -> MachineModel:
    """Measure the host and return a fitted :class:`MachineModel`.

    Notes
    -----
    On a single-core container the bandwidth curve is flat
    (``bw_max == bw_single``); on multi-core hosts we assume the common
    ~6-8x saturation ratio unless the host exposes enough cores to measure
    it (kept simple here: ``bw_max = bw_single * min(cores, 8) * 0.8``).
    """
    cores = os.cpu_count() or 1
    bw1 = measure_stream_bandwidth(stream_entries)
    gflops = measure_gemm_gflops(gemm_size, gemm_size, gemm_size)
    peak_per_core = gflops / assumed_gemm_efficiency
    if cores == 1:
        bw_max = bw1
    else:
        bw_max = bw1 * min(cores, 8) * 0.8
    return MachineModel(
        name=f"host ({cores} cores, calibrated)",
        cores=cores,
        peak_gflops_per_core=peak_per_core,
        gemm_efficiency=assumed_gemm_efficiency,
        bw_single_gbs=bw1,
        bw_max_gbs=bw_max,
        cache_bytes=detect_cache_bytes(),
    )
