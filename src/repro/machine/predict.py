"""Predicted times for every algorithm/mode/thread point in the figures.

Combines the exact phase costs (:mod:`repro.core.flops`) with a
:class:`~repro.machine.model.MachineModel`, adding the one piece of
information the raw counts lack: *how each phase is parallelized*, which
differs between the paper's algorithms and is the source of their different
scaling behaviour.

Parallelization classes
-----------------------
``explicit``
    OpenMP-style: work divides evenly across ``T`` threads with private
    outputs (1-step GEMMs, thread-local KRP blocks).  Linear compute
    scaling at the shaped single-core rate — no BLAS output-tile cap,
    because the algorithm splits the inner dimension itself and pays in
    the ``reduce`` phase instead.
``blas``
    Parallelism inside one BLAS call (2-step GEMM/GEMV, baseline GEMM).
    The model's :meth:`~repro.machine.model.MachineModel.blas_speedup`
    curve applies — this is what makes the baseline's inner-product-shaped
    GEMM stop scaling (Section 5.3.1).
``memory``
    Streaming phases (KRP formation, reductions): additive
    compute-plus-traffic time at streaming rates.
``serial``
    Single-threaded phases (the straightforward baseline's reorder/KRP).
``matlab``
    Matlab's implicitly multithreaded built-ins (the TTB reference's
    permute and khatrirao): internal parallelism that saturates around 2x.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.flops import (
    AlgorithmCost,
    PhaseCost,
    baseline_cost,
    blocked_cost,
    gemm_lower_bound_cost,
    krp_cost,
    onestep_cost,
    stream_cost,
    twostep_cost,
)
from repro.machine.model import MachineModel
from repro.tensor.layout import mode_products

__all__ = [
    "predict_phase_times",
    "predict_algorithm_time",
    "predict_cpals_iteration",
    "predict_krp_time",
    "predict_stream_time",
    "predict_mttkrp_candidates",
    "ALGORITHMS",
]

ALGORITHMS = ("onestep", "twostep", "baseline", "gemm-baseline", "ttb")

# (algorithm, phase) -> parallelization class.
_PARALLEL_CLASS: dict[tuple[str, str], str] = {
    ("onestep", "full_krp"): "memory",
    ("onestep", "lr_krp"): "memory",
    ("onestep", "gemm"): "explicit",
    ("onestep", "reduce"): "memory",
    ("blocked", "full_krp"): "memory",
    ("blocked", "lr_krp"): "memory",
    ("blocked", "gemm"): "explicit",
    ("blocked", "reduce"): "memory",
    ("twostep", "lr_krp"): "memory",
    ("twostep", "gemm"): "blas",
    ("twostep", "gemv"): "blas",
    ("baseline", "reorder"): "serial",
    ("baseline", "full_krp"): "serial",
    ("baseline", "gemm"): "blas",
    ("gemm-baseline", "gemm"): "blas",
    ("ttb", "reorder"): "matlab",
    ("ttb", "full_krp"): "matlab",
    ("ttb", "gemm"): "blas",
}


def _phase_time(
    model: MachineModel,
    algorithm: str,
    phase: PhaseCost,
    threads: int,
    per_thread_gemm_shape: tuple[int, int, int] | None = None,
) -> float:
    """Time of one phase under its algorithm's parallelization class."""
    klass = _PARALLEL_CLASS.get((algorithm, phase.name))
    if klass is None:
        raise KeyError(f"no parallel class for {(algorithm, phase.name)!r}")
    if klass == "serial":
        return model.serial_time(phase)
    if klass == "matlab":
        return model.matlab_time(phase, threads)
    if klass == "memory":
        return model.stream_time(phase, threads)
    if klass == "blas":
        return model.blas_time(phase, threads)
    if klass == "explicit":
        return model.explicit_time(phase, threads, per_thread_gemm_shape)
    raise AssertionError(f"unknown class {klass}")


def predict_phase_times(
    model: MachineModel,
    algorithm: str,
    cost: AlgorithmCost,
    threads: int,
    per_thread_gemm_shape: tuple[int, int, int] | None = None,
) -> dict[str, float]:
    """Per-phase predicted seconds for one algorithm invocation."""
    return {
        p.name: _phase_time(model, algorithm, p, threads, per_thread_gemm_shape)
        for p in cost.phases
    }


def predict_algorithm_time(
    model: MachineModel,
    shape: Sequence[int],
    n: int,
    C: int,
    threads: int,
    algorithm: str,
    side: str = "auto",
) -> tuple[float, dict[str, float]]:
    """Predicted (total seconds, per-phase seconds) for one MTTKRP.

    ``algorithm``:

    * ``"onestep"`` — Algorithm 3;
    * ``"twostep"`` — Algorithm 4 (internal modes; external modes are
      scored as 1-step, which the 2-step degenerates to);
    * ``"baseline"`` — straightforward approach (reorder + reuse-KRP +
      one BLAS GEMM);
    * ``"gemm-baseline"`` — the paper's DGEMM-only Baseline benchmark;
    * ``"ttb"`` — the Matlab reference profile (serial reorder + serial
      naive KRP + BLAS GEMM).
    """
    shape = tuple(int(s) for s in shape)
    N = len(shape)
    p = mode_products(shape, n)
    external = n == 0 or n == N - 1
    per_thread_shape: tuple[int, int, int] | None = None
    if algorithm == "twostep" and external:
        algorithm = "onestep"
    if algorithm == "onestep":
        cost = onestep_cost(shape, n, C, threads)
        if external:
            # Each thread multiplies an I_n x (I_other/T) slice by its own
            # KRP rows: per-thread GEMM is (I_n, C, I_other/T).
            per_thread_shape = (p.size, C, max(p.other // threads, 1))
        else:
            # Per-block GEMMs of shape (I_n, C, I^L_n).
            per_thread_shape = (p.size, C, p.left)
    elif algorithm == "blocked":
        cost = blocked_cost(
            shape, n, C, threads, cache_bytes=model.cache_bytes
        )
        if external:
            tile = max(p.other // max(threads, 1), 1)
        else:
            tile = p.left
        per_thread_shape = (p.size, C, tile)
    elif algorithm == "twostep":
        cost = twostep_cost(shape, n, C, side=side)
    elif algorithm == "baseline":
        cost = baseline_cost(shape, n, C)
    elif algorithm == "gemm-baseline":
        cost = gemm_lower_bound_cost(shape, n, C)
    elif algorithm == "ttb":
        base = baseline_cost(shape, n, C)
        # Same structure as "baseline" but with the naive (no-reuse) KRP the
        # Matlab khatrirao performs; scored via the naive-penalty multiplier
        # below rather than the raw counts (see predict_krp_time).
        cost = AlgorithmCost("ttb", base.phases)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")

    phase_times = predict_phase_times(
        model, cost.algorithm, cost, threads, per_thread_shape
    )
    if algorithm == "ttb":
        Z = N - 1
        phase_times["full_krp"] *= 1.0 + model.naive_recompute_penalty * max(
            Z - 2, 0
        )
    return sum(phase_times.values()), phase_times


def predict_cpals_iteration(
    model: MachineModel,
    shape: Sequence[int],
    C: int,
    threads: int,
    implementation: str,
) -> float:
    """Predicted seconds for one CP-ALS iteration (Figure 7's quantity).

    ``implementation``:

    * ``"repro"`` — the paper's policy: one MTTKRP per mode, 1-step for
      external modes and 2-step for internal modes;
    * ``"ttb"`` — the Matlab reference profile per mode;
    * ``"dimtree"`` — the Phan et al. Section III.C extension
      (:mod:`repro.core.dimtree`): two shared partial contractions per
      iteration plus per-mode node contractions.

    The ALS gram/solve work (``O(C^2 sum I_n + C^3)``) is negligible at
    the paper's scales and is not modeled.
    """
    shape = tuple(int(s) for s in shape)
    N = len(shape)
    if implementation == "repro":
        return sum(
            predict_algorithm_time(
                model,
                shape,
                n,
                C,
                threads,
                "twostep" if 0 < n < N - 1 else "onestep",
            )[0]
            for n in range(N)
        )
    if implementation == "ttb":
        return sum(
            predict_algorithm_time(model, shape, n, C, threads, "ttb")[0]
            for n in range(N)
        )
    if implementation == "dimtree":
        from repro.core.dimtree import split_point
        from repro.core.flops import PhaseCost, gemm_cost
        from repro.util import prod

        m = split_point(N)
        left_rows = prod(shape[:m])
        right_rows = prod(shape[m:])
        total = 0.0
        # Two partial-MTTKRP GEMMs (each touches all tensor entries).
        total += model.blas_time(
            gemm_cost(left_rows, C, right_rows), threads
        )
        total += model.blas_time(
            gemm_cost(right_rows, C, left_rows), threads
        )
        # Partial KRPs (streaming).
        for rows, dims in ((right_rows, shape[m:]), (left_rows, shape[:m])):
            total += model.stream_time(krp_cost(list(dims), C), threads)
        # Node contractions: each mode of a half reads its node once.
        for half_rows, half_len in ((left_rows, m), (right_rows, N - m)):
            node_entries = half_rows * C
            per_mode = PhaseCost(
                "gemv",
                2.0 * node_entries,
                node_entries * 8.0,
                0.0,
            )
            total += half_len * model.stream_time(per_mode, threads)
        return total
    raise ValueError(f"unknown implementation {implementation!r}")


def predict_mttkrp_candidates(
    model: MachineModel,
    shape: Sequence[int],
    n: int,
    C: int,
    threads: int,
) -> dict[str, float]:
    """Predicted seconds for every *runnable* single-mode MTTKRP candidate.

    This is the autotuner's **prior** (:mod:`repro.tune`): candidate
    labels map onto the measured candidate set — ``"onestep"``,
    ``"baseline"``, ``"blocked"``, ``"twostep:left"``/``"twostep:right"``
    (internal modes only) and ``"dimtree"`` (the single-mode node path:
    half-tensor partial contraction + partial KRP + one node
    contraction).  The model ranks candidates so the tuner measures the
    plausible ones first and can prune clearly dominated ones; it never
    replaces measurement, which is the point of the tuner.
    """
    shape = tuple(int(s) for s in shape)
    N = len(shape)
    external = n == 0 or n == N - 1
    out: dict[str, float] = {}
    out["onestep"] = predict_algorithm_time(
        model, shape, n, C, threads, "onestep"
    )[0]
    out["baseline"] = predict_algorithm_time(
        model, shape, n, C, threads, "baseline"
    )[0]
    out["blocked"] = predict_algorithm_time(
        model, shape, n, C, threads, "blocked"
    )[0]
    if not external:
        for side in ("left", "right"):
            out[f"twostep:{side}"] = predict_algorithm_time(
                model, shape, n, C, threads, "twostep", side=side
            )[0]
    if N >= 3:
        from repro.core.dimtree import split_point
        from repro.core.flops import PhaseCost, gemm_cost
        from repro.util import prod

        m = split_point(N)
        if n < m:
            half, other = shape[:m], shape[m:]
        else:
            half, other = shape[m:], shape[:m]
        half_rows = prod(half)
        other_rows = prod(other)
        total = model.blas_time(gemm_cost(half_rows, C, other_rows), threads)
        total += model.stream_time(krp_cost(list(other), C), threads)
        node_entries = half_rows * C
        total += model.stream_time(
            PhaseCost("gemv", 2.0 * node_entries, node_entries * 8.0, 0.0),
            threads,
        )
        out["dimtree"] = total
    return out


def predict_krp_time(
    model: MachineModel,
    dims: Sequence[int],
    C: int,
    threads: int,
    schedule: str = "reuse",
) -> float:
    """Predicted seconds for a parallel KRP (the Figure 4 kernel).

    The naive schedule is scored as the reuse time scaled by
    ``1 + naive_recompute_penalty * (Z-2)``: the extra Hadamard passes are
    cache-resident recomputation, not extra DRAM traffic, and the linear
    penalty reproduces the measured 1.5-2.5x range of Figure 4.
    """
    dims = [int(d) for d in dims]
    base = model.stream_time(krp_cost(dims, C, schedule="reuse"), threads)
    if schedule == "reuse":
        return base
    if schedule == "naive":
        Z = len(dims)
        return base * (1.0 + model.naive_recompute_penalty * max(Z - 2, 0))
    raise ValueError(f"unknown schedule {schedule!r}")


def predict_stream_time(
    model: MachineModel, entries: int, threads: int
) -> float:
    """Predicted seconds for the STREAM scale kernel on ``entries`` doubles."""
    return model.stream_time(stream_cost(entries), threads)
