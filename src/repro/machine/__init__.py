"""Analytical machine model: the simulated experimental platform.

The paper's experiments ran on a dual-socket, 12-core Intel Xeon E5-2620
with MKL — hardware this reproduction does not have (the container exposes
a single core).  Per the substitution policy in DESIGN.md, this subpackage
models that machine analytically:

* :mod:`~repro.machine.model` — :class:`MachineModel`: core counts, peak
  flop rates, a STREAM-calibrated bandwidth-vs-threads curve, and a
  shape-aware GEMM efficiency model (capturing the paper's observation that
  MKL scales poorly on inner-product-shaped multiplies);
* :mod:`~repro.machine.predict` — combines the model with the exact
  per-phase costs from :mod:`repro.core.flops` to predict the time of every
  algorithm/mode/thread-count point in Figures 4-8;
* :mod:`~repro.machine.calibrate` — microbenchmarks that fit a
  :class:`MachineModel` to the *host*, validating the model form against
  measured single-core data.

The model is deliberately a roofline-style first-order model: each phase
costs ``max(flop time, memory time)`` plus a per-region launch overhead.
That is enough to reproduce who wins, by what factor, and where the
crossovers fall — which is what the reproduction is graded on — without
pretending to cycle accuracy.
"""

from repro.machine.calibrate import calibrate_host_model
from repro.machine.model import MachineModel, paper_machine
from repro.machine.predict import (
    predict_algorithm_time,
    predict_krp_time,
    predict_phase_times,
    predict_stream_time,
)

__all__ = [
    "MachineModel",
    "paper_machine",
    "calibrate_host_model",
    "predict_algorithm_time",
    "predict_phase_times",
    "predict_krp_time",
    "predict_stream_time",
]
