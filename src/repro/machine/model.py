"""Roofline-style machine model with thread-scaling curves.

Every phase of every algorithm in this package is characterized (in
:mod:`repro.core.flops`) by flop and byte counts plus, for matrix
multiplies, the GEMM shape.  :class:`MachineModel` turns those counts into
time.  Four empirically motivated effects beyond a textbook roofline are
modeled, each tied to an observation in the paper:

* **Bandwidth saturation.**  STREAM-like bandwidth ramps roughly linearly
  with threads until the memory controllers saturate:
  ``min(T * bw_single, bw_max)``.  On the paper's dual-socket Sandy Bridge
  the saturation ratio is ~7-8x — exactly the parallel-speedup range the
  paper reports for the memory-bound KRP (6.6-8.3x at 12 threads).
* **Write-allocate traffic.**  A streaming store moves its cache line
  twice (read-for-ownership + writeback), so written bytes are charged
  ``write_allocate_factor`` (2) times.  This is what puts Algorithm 1's
  KRP at/below the STREAM curve in Figure 4, as the paper observes.
* **Shaped GEMM efficiency.**  A narrow output panel (the ``C = 25``
  columns of every MTTKRP multiply) achieves a fraction
  ``n / (n + min_gemm_n_half)`` of peak — register/cache blocking cannot
  amortize across 25 columns.
* **BLAS parallel scaling.**  Parallelism *inside* one BLAS call scales as
  ``min(blas_parallel_eff * T, (m*n / blas_tile_area)^blas_scaling_exp)``:
  a library that declines to split the inner dimension (to avoid reduction
  temporaries, as the paper conjectures of MKL in Section 5.3.1) can only
  spread the output tiles across cores, so the inner-product-shaped
  baseline GEMM (``I_n x 25`` output, enormous k) stops scaling while the
  2-step algorithm's more square partial MTTKRP keeps scaling.

The model's purpose is to reproduce the *shape* of the paper's figures
(orderings, ratios, crossovers) at paper scale on hardware that cannot run
them; the measured benchmarks at reduced scale validate the implementation
itself.  Constants below are calibrated against the ratios the paper
reports, not fitted to unavailable raw data.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.flops import PhaseCost

__all__ = ["MachineModel", "paper_machine", "host_model_default"]


@dataclass(frozen=True)
class MachineModel:
    """Analytical performance model of a shared-memory machine.

    Attributes
    ----------
    name:
        Human-readable label used in reports.
    cores:
        Physical cores available to the benchmark.
    peak_gflops_per_core:
        Double-precision peak per core (paper machine: 16 GFLOPS =
        2.0 GHz x 8 flops/cycle with AVX).
    gemm_efficiency:
        Fraction of the shaped peak a large DGEMM achieves per core.
    stream_gflops_per_core:
        Arithmetic throughput of *streaming* (non-BLAS) kernels — Hadamard
        products, gathers, reductions — which run far below GEMM rates.
    bw_single_gbs / bw_max_gbs:
        Single-thread and saturated STREAM bandwidth, GB/s.
    write_allocate_factor:
        Multiplier on written bytes (2 = read-for-ownership + writeback).
    min_gemm_n_half:
        Narrow-panel penalty constant (see module docstring).
    blas_parallel_eff:
        Parallel efficiency of a well-shaped multithreaded BLAS call
        (0.62 x 12 threads ~ 7.4x, the paper's 2-step speedup band).
    blas_tile_area / blas_scaling_exp:
        Output-parallelism curve of the BLAS (see module docstring).
    naive_recompute_penalty:
        Per-extra-Hadamard slowdown of the naive KRP relative to
        Algorithm 1 (0.55 reproduces Figure 4's 1.5-2.5x range).
    region_overhead_us:
        Per-parallel-region launch/join overhead, microseconds, scaled by
        ``log2(T)+1``.
    cache_bytes:
        Last-level cache capacity in bytes (one socket's worth — the fast
        memory a worker can count on).  Drives the analytic tile-shape
        selection of the blocked MTTKRP kernels
        (:mod:`repro.core.mttkrp_blocked`) and instantiates the
        Ballard-Rouse-Knight communication lower bound
        (:func:`repro.core.flops.mttkrp_comm_lower_bound`).
    """

    name: str
    cores: int
    peak_gflops_per_core: float
    gemm_efficiency: float
    bw_single_gbs: float
    bw_max_gbs: float
    stream_gflops_per_core: float = 1.2
    write_allocate_factor: float = 2.0
    min_gemm_n_half: float = 12.0
    blas_parallel_eff: float = 0.62
    blas_tile_area: float = 260.0
    blas_scaling_exp: float = 0.44
    naive_recompute_penalty: float = 0.55
    matlab_parallel_speedup: float = 2.0
    region_overhead_us: float = 20.0
    cache_bytes: float = float(8 << 20)

    # ------------------------------------------------------------------ #
    # Rate curves
    # ------------------------------------------------------------------ #

    def bandwidth(self, threads: int) -> float:
        """Sustainable bandwidth (bytes/s) with ``threads`` active threads."""
        threads = self._check_threads(threads)
        gbs = min(threads * self.bw_single_gbs, self.bw_max_gbs)
        return gbs * 1e9

    def effective_bytes(self, cost: PhaseCost) -> float:
        """Traffic including write-allocate on stores."""
        return cost.read_bytes + self.write_allocate_factor * cost.write_bytes

    def gemm_rate_single(
        self, gemm_shape: tuple[int, int, int] | None
    ) -> float:
        """Single-core achievable flops/s for a GEMM of the given shape."""
        peak = self.peak_gflops_per_core * 1e9
        if gemm_shape is None:
            return self.gemm_efficiency * peak
        m, n, _k = gemm_shape
        small = max(min(m, n), 1)
        return peak * self.gemm_efficiency * small / (small + self.min_gemm_n_half)

    def blas_speedup(
        self, gemm_shape: tuple[int, int, int] | None, threads: int
    ) -> float:
        """Parallel speedup achieved *inside* one BLAS call.

        Capped both by overall BLAS parallel efficiency and by the
        output-parallelism curve — the term that flattens the baseline's
        inner-product-shaped GEMM in Figure 5.
        """
        threads = self._check_threads(threads)
        if threads == 1:
            return 1.0
        cap = self.blas_parallel_eff * threads
        if gemm_shape is not None:
            m, n, _k = gemm_shape
            tiles = max((m * n) / self.blas_tile_area, 1.0)
            cap = min(cap, tiles**self.blas_scaling_exp)
        return max(cap, 1.0)

    def region_overhead(self, threads: int) -> float:
        """Seconds of launch/join overhead for one parallel region."""
        threads = self._check_threads(threads)
        if threads == 1:
            return 0.0
        levels = 1 + (threads - 1).bit_length()
        return self.region_overhead_us * 1e-6 * levels

    # ------------------------------------------------------------------ #
    # Phase-time primitives (used by repro.machine.predict)
    # ------------------------------------------------------------------ #

    def stream_time(self, cost: PhaseCost, threads: int) -> float:
        """Streaming-kernel time: additive compute + traffic.

        Streaming kernels (KRP, reductions, copies) interleave arithmetic
        with stores and do not overlap them the way a blocked GEMM does, so
        the additive combination fits measured behaviour better than a
        roofline max.
        """
        threads = self._check_threads(threads)
        t_cmp = cost.flops / (threads * self.stream_gflops_per_core * 1e9)
        t_mem = self.effective_bytes(cost) / self.bandwidth(threads)
        return t_cmp + t_mem + self.region_overhead(threads)

    def blas_time(self, cost: PhaseCost, threads: int) -> float:
        """Time of a phase parallelized only inside a BLAS call."""
        t_cmp = cost.flops / self.gemm_rate_single(cost.gemm_shape)
        t_mem = self.effective_bytes(cost) / self.bandwidth(1)
        seq = max(t_cmp, t_mem)
        return seq / self.blas_speedup(cost.gemm_shape, threads)

    def explicit_time(
        self,
        cost: PhaseCost,
        threads: int,
        per_thread_gemm_shape: tuple[int, int, int] | None = None,
    ) -> float:
        """Time of a phase the algorithm parallelizes itself (k-split with
        private outputs): linear compute scaling at shaped single-core rate,
        bandwidth-roofline on traffic."""
        threads = self._check_threads(threads)
        shape = per_thread_gemm_shape or cost.gemm_shape
        t_cmp = cost.flops / (threads * self.gemm_rate_single(shape))
        t_mem = self.effective_bytes(cost) / self.bandwidth(threads)
        return max(t_cmp, t_mem) + self.region_overhead(threads)

    def matlab_time(self, cost: PhaseCost, threads: int) -> float:
        """Time of a phase executed by Matlab's implicitly multithreaded
        built-ins (``permute``, vectorized elementwise code).

        Matlab parallelizes these internally but saturates quickly; the
        paper's measured CP-ALS gap (6.7-7.4x at 12 threads, <= 2x
        sequentially) pins the effective saturation near
        ``matlab_parallel_speedup`` (~2x)."""
        threads = self._check_threads(threads)
        speedup = min(float(threads), self.matlab_parallel_speedup)
        return self.serial_time(cost) / max(speedup, 1.0)

    def serial_time(self, cost: PhaseCost) -> float:
        """Time of a single-threaded phase."""
        if cost.gemm_shape is not None:
            t_cmp = cost.flops / self.gemm_rate_single(cost.gemm_shape)
        else:
            t_cmp = cost.flops / (self.stream_gflops_per_core * 1e9)
        t_mem = self.effective_bytes(cost) / self.bandwidth(1)
        return max(t_cmp, t_mem) if cost.gemm_shape is not None else t_cmp + t_mem

    def with_cores(self, cores: int) -> "MachineModel":
        """Copy of the model restricted/extended to ``cores`` cores."""
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        return replace(self, cores=int(cores))

    # ------------------------------------------------------------------ #

    def _check_threads(self, threads: int) -> int:
        threads = int(threads)
        if threads <= 0:
            raise ValueError(f"threads must be positive, got {threads}")
        if threads > self.cores:
            raise ValueError(
                f"model {self.name!r} has {self.cores} cores; "
                f"cannot run {threads} threads"
            )
        return threads


def paper_machine() -> MachineModel:
    """The paper's platform: dual-socket Xeon E5-2620 (Sandy Bridge), MKL.

    12 cores at 2.0 GHz (turbo off), 16 GFLOPS/core peak.  The remaining
    constants are calibrated so the model lands inside every quantitative
    band the paper reports (see ``tests/test_machine_paper_bands.py``):
    KRP speedup 6.6-8.3x, 1-step speedup 8-12x, 2-step 6-8x, baseline
    within [-25%, +3%] of 2-step sequentially, 1-step <= 2x baseline
    sequentially, and 2-4.7x advantage over the baseline at 12 threads for
    N > 3.
    """
    return MachineModel(
        name="2x Intel Xeon E5-2620 (paper)",
        cores=12,
        peak_gflops_per_core=16.0,
        gemm_efficiency=0.88,
        bw_single_gbs=4.0,
        bw_max_gbs=30.0,
        cache_bytes=float(15 << 20),  # 15 MiB L3 per E5-2620 socket
    )


def host_model_default() -> MachineModel:
    """A conservative fallback model of the current host.

    Prefer :func:`repro.machine.calibrate.calibrate_host_model`, which
    measures the host; this default exists so model-based reports work
    without running microbenchmarks.
    """
    import os

    return MachineModel(
        name="host (uncalibrated default)",
        cores=os.cpu_count() or 1,
        peak_gflops_per_core=10.0,
        gemm_efficiency=0.8,
        bw_single_gbs=8.0,
        bw_max_gbs=24.0,
    )
