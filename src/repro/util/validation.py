"""Argument validation helpers.

All public entry points in :mod:`repro` validate their inputs with these
helpers so that user errors surface as clear :class:`ValueError` /
:class:`TypeError` messages rather than as shape errors deep inside BLAS
calls.  The helpers are cheap (O(N) in the number of modes, never O(data)),
so they are safe to call even in performance-sensitive code.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "check_positive_int",
    "check_mode",
    "check_same_columns",
    "check_factor_matrices",
    "check_rank_consistent",
]


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``.

    Accepts numpy integer scalars (common when sizes come from ``shape``
    tuples of numpy arrays).
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_mode(mode: int, ndim: int) -> int:
    """Validate a mode index against a tensor order, supporting negatives.

    Parameters
    ----------
    mode:
        Requested mode; negative values index from the end as in numpy.
    ndim:
        Number of tensor modes.

    Returns
    -------
    int
        The normalized (non-negative) mode index.
    """
    if isinstance(mode, bool) or not isinstance(mode, (int, np.integer)):
        raise TypeError(f"mode must be an integer, got {type(mode).__name__}")
    mode = int(mode)
    if mode < -ndim or mode >= ndim:
        raise ValueError(f"mode {mode} out of range for an order-{ndim} tensor")
    return mode % ndim


def check_same_columns(matrices: Sequence[np.ndarray], name: str = "matrices") -> int:
    """Validate that all matrices are 2-D with a common column count.

    Returns
    -------
    int
        The shared number of columns ``C``.
    """
    if len(matrices) == 0:
        raise ValueError(f"{name} must be non-empty")
    ncols = None
    for i, m in enumerate(matrices):
        m = np.asarray(m)
        if m.ndim != 2:
            raise ValueError(
                f"{name}[{i}] must be 2-D, got array of ndim={m.ndim}"
            )
        if ncols is None:
            ncols = m.shape[1]
        elif m.shape[1] != ncols:
            raise ValueError(
                f"{name} must share a column count: {name}[0] has {ncols} "
                f"columns but {name}[{i}] has {m.shape[1]}"
            )
    assert ncols is not None
    return int(ncols)


def check_factor_matrices(
    factors: Sequence[np.ndarray], shape: Sequence[int]
) -> int:
    """Validate CP factor matrices against a tensor shape.

    Each ``factors[n]`` must be a 2-D array with ``shape[n]`` rows, and all
    factors must share a column count (the CP rank).

    Returns
    -------
    int
        The shared rank ``C``.
    """
    if len(factors) != len(shape):
        raise ValueError(
            f"expected {len(shape)} factor matrices (one per mode), "
            f"got {len(factors)}"
        )
    rank = check_same_columns(factors, "factors")
    for n, (f, dim) in enumerate(zip(factors, shape)):
        if np.asarray(f).shape[0] != dim:
            raise ValueError(
                f"factors[{n}] must have {dim} rows to match tensor mode {n}, "
                f"got {np.asarray(f).shape[0]}"
            )
    return rank


def check_rank_consistent(rank: int, factors: Sequence[np.ndarray]) -> int:
    """Validate an explicit rank against factor matrices' column counts."""
    rank = check_positive_int(rank, "rank")
    actual = check_same_columns(factors, "factors")
    if actual != rank:
        raise ValueError(f"factors have {actual} columns but rank={rank} given")
    return rank
