"""Cooperative cancellation tokens for long-running decompositions.

The iterative drivers (:func:`repro.cpd.cp_als.cp_als`,
:func:`repro.batch.cp_als.cp_als_batched`) run an unbounded number of
ALS iterations.  A service scheduling many such runs needs two things a
plain function call cannot give it: the ability to *stop* a run that is
no longer wanted, and a hard *deadline* after which a run must not keep
burning a worker.  Both are cooperative by design — the paper's kernels
are bit-reproducible and a kernel invocation is never interrupted
mid-flight; instead the drivers poll a :class:`CancelToken` at iteration
boundaries, so a cancelled run stops at the next boundary with all
invariants intact (no torn factor updates, workspace still reusable).

The token is thread-safe: it is typically *set* from a control thread
(a server's pipe-listener) while the iteration loop polls it from the
compute thread.

>>> token = CancelToken()
>>> token.cancel()
>>> token.cancelled
True
"""

from __future__ import annotations

import threading
import time

__all__ = ["CancelToken", "Cancelled", "DeadlineExceeded"]


class Cancelled(RuntimeError):
    """Raised at an iteration boundary after :meth:`CancelToken.cancel`.

    ``reason`` is the free-form string passed to ``cancel()`` (default
    ``"cancelled"``); services use it to distinguish user cancellation
    from shutdown-driven sweeps.
    """

    def __init__(self, reason: str = "cancelled") -> None:
        super().__init__(reason)
        self.reason = reason


class DeadlineExceeded(Cancelled):
    """Raised at an iteration boundary once the token's deadline passed."""

    def __init__(self, deadline: float) -> None:
        super().__init__("deadline exceeded")
        self.deadline = deadline


class CancelToken:
    """A cancellation flag plus optional wall-clock deadline.

    Parameters
    ----------
    deadline:
        Absolute :func:`time.monotonic` instant after which
        :meth:`raise_if_cancelled` raises :class:`DeadlineExceeded`, or
        ``None`` for no deadline.  Use :meth:`with_timeout` to build a
        token from a relative budget.
    on_progress:
        Optional callable ``(iteration, fit)`` invoked by the drivers at
        every iteration boundary *before* the cancellation check — the
        hook a service uses to stream progress without polling.  Must be
        cheap and must not raise (exceptions propagate out of the run).
    """

    __slots__ = ("_event", "_reason", "deadline", "on_progress")

    def __init__(self, deadline: float | None = None, on_progress=None) -> None:
        self._event = threading.Event()
        self._reason = "cancelled"
        self.deadline = float(deadline) if deadline is not None else None
        self.on_progress = on_progress

    @classmethod
    def with_timeout(cls, seconds: float, on_progress=None) -> "CancelToken":
        """Token whose deadline is ``seconds`` from now (monotonic)."""
        return cls(deadline=time.monotonic() + float(seconds),
                   on_progress=on_progress)

    # -- control side --------------------------------------------------- #

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation (idempotent; first reason wins)."""
        if not self._event.is_set():
            self._reason = str(reason)
            self._event.set()

    # -- compute side --------------------------------------------------- #

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called (deadline not included)."""
        return self._event.is_set()

    @property
    def reason(self) -> str:
        return self._reason

    def expired(self) -> bool:
        """Whether the deadline (if any) has passed."""
        return self.deadline is not None and time.monotonic() >= self.deadline

    def remaining(self) -> float | None:
        """Seconds until the deadline (may be negative), or ``None``."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def raise_if_cancelled(self) -> None:
        """Raise :class:`Cancelled` / :class:`DeadlineExceeded` if due.

        The drivers call this at every iteration boundary; anything with
        a loop of its own (admission-queue waits, microbenchmark sweeps)
        may do the same.
        """
        if self._event.is_set():
            raise Cancelled(self._reason)
        if self.expired():
            raise DeadlineExceeded(self.deadline)

    def checkpoint(self, iteration: int, fit: float) -> None:
        """One driver-side boundary: report progress, then maybe raise."""
        if self.on_progress is not None:
            self.on_progress(iteration, fit)
        self.raise_if_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"CancelToken({state}, deadline={self.deadline})"
