"""Phase-level wall-clock timing used for the paper's breakdown figures.

Figures 6 and 8 decompose MTTKRP time into phases (DGEMM, Full KRP,
Left & Right KRP, REDUCE, DGEMV).  The algorithm implementations accept an
optional :class:`PhaseTimer` and wrap each phase in ``with timer.phase(...)``;
passing ``None`` costs one attribute check per phase.

Thread-safety: phases may be entered concurrently from pool workers (e.g.
each thread's KRP block).  Concurrent spans of the same phase are merged by
accumulating *inclusive* wall time per entry; for the breakdown figures the
harness times phases from the orchestrating thread only, which matches how
the paper instruments its OpenMP regions (region-level timers).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["PhaseTimer", "wall_time"]


def wall_time() -> float:
    """Monotonic wall-clock seconds (the benchmark clock)."""
    return time.perf_counter()


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    Examples
    --------
    >>> t = PhaseTimer()
    >>> with t.phase("gemm"):
    ...     pass
    >>> sorted(t.totals) == ["gemm"]
    True
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str):
        """Context manager accumulating the enclosed wall time into ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.totals[name] = self.totals.get(name, 0.0) + elapsed
                self.counts[name] = self.counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Manually accumulate time into a phase."""
        with self._lock:
            self.totals[name] = self.totals.get(name, 0.0) + float(seconds)
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self) -> float:
        """Sum of all phase totals."""
        with self._lock:
            return sum(self.totals.values())

    def snapshot(self) -> dict[str, float]:
        """Consistent copy of the phase totals, taken under the lock.

        Readers should prefer this (or :meth:`as_dict`) over touching
        :attr:`totals` directly: a direct read can race with concurrent
        ``phase()`` exits from pool workers and observe a dict mid-update.
        """
        with self._lock:
            return dict(self.totals)

    def as_dict(self) -> dict[str, dict]:
        """Lock-protected copy of both totals and entry counts."""
        with self._lock:
            return {"totals": dict(self.totals), "counts": dict(self.counts)}

    def reset(self) -> None:
        """Drop all accumulated data."""
        with self._lock:
            self.totals.clear()
            self.counts.clear()

    def merged(self, *others: "PhaseTimer") -> "PhaseTimer":
        """New timer with phase totals summed across ``self`` and ``others``."""
        out = PhaseTimer()
        for src in (self, *others):
            with src._lock:
                for k, v in src.totals.items():
                    out.totals[k] = out.totals.get(k, 0.0) + v
                for k, c in src.counts.items():
                    out.counts[k] = out.counts.get(k, 0) + c
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v:.4f}s" for k, v in sorted(self.totals.items()))
        return f"PhaseTimer({body})"


class _NullPhase:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_PHASE = _NullPhase()


class NullTimer:
    """Timer stub whose :meth:`phase` is free; used when timing is off."""

    def phase(self, name: str):  # noqa: ARG002 - interface compatibility
        return _NULL_PHASE

    def add(self, name: str, seconds: float) -> None:  # noqa: ARG002
        pass


NULL_TIMER = NullTimer()
