"""Small shared utilities used across the package.

This subpackage deliberately has no dependencies on the rest of
:mod:`repro` so that every other subpackage may import it freely.
"""

from repro.util.misc import (
    human_bytes,
    human_count,
    prod,
)
from repro.util.validation import (
    check_factor_matrices,
    check_mode,
    check_positive_int,
    check_rank_consistent,
    check_same_columns,
)

__all__ = [
    "prod",
    "human_bytes",
    "human_count",
    "check_positive_int",
    "check_mode",
    "check_same_columns",
    "check_factor_matrices",
    "check_rank_consistent",
]
