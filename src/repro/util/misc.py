"""Miscellaneous helpers: integer products and human-readable sizes."""

from __future__ import annotations

import math
from collections.abc import Iterable

__all__ = ["prod", "human_bytes", "human_count"]


def prod(values: Iterable[int]) -> int:
    """Exact integer product of an iterable (empty product is 1).

    ``numpy.prod`` silently overflows on large shapes because it computes in
    a fixed-width integer dtype; tensor layouts routinely multiply many mode
    sizes together, so we always use Python's arbitrary-precision integers.

    Parameters
    ----------
    values:
        Iterable of integers (e.g. a tensor shape or a slice of one).

    Returns
    -------
    int
        The product, ``1`` for an empty iterable.
    """
    return math.prod(values)


_BYTE_UNITS = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"]


def human_bytes(n: int | float) -> str:
    """Format a byte count with a binary-prefix unit, e.g. ``"1.50 GiB"``.

    Used by benchmark harnesses and error messages; never used in hot paths.
    """
    n = float(n)
    if n < 0:
        return "-" + human_bytes(-n)
    for unit in _BYTE_UNITS:
        if n < 1024.0 or unit == _BYTE_UNITS[-1]:
            if unit == "B":
                return f"{int(n)} {unit}"
            return f"{n:.2f} {unit}"
        n /= 1024.0
    raise AssertionError("unreachable")


def human_count(n: int | float) -> str:
    """Format a large count with an SI suffix, e.g. ``"7.5e8" -> "750.0M"``."""
    n = float(n)
    if n < 0:
        return "-" + human_count(-n)
    for value, suffix in [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")]:
        if n >= value:
            return f"{n / value:.1f}{suffix}"
    return f"{n:.0f}"
