"""Synthetic fMRI dynamic-connectivity tensor (Section 3's application).

The paper's data: for each of 225 time steps and 59 subjects, the
instantaneous correlation between fMRI signals of 200 brain regions —
a ``time x subject x region x region`` dense tensor, decomposed with CP to
extract brain networks varying over time and subjects.

We synthesize a tensor with the same structure from a planted model:

* each of ``rank`` latent **networks** is a smooth, localized loading
  vector over regions (a Gaussian bump over a contiguous region
  neighbourhood — fMRI networks are spatially coherent);
* each network has a **temporal activation** profile (task-block boxcars
  convolved with a gamma haemodynamic-response-like kernel);
* each subject expresses each network with a positive **subject weight**
  (log-normal across subjects — individual variability).

The connectivity tensor is then

    X(t, s, i, j) = sum_c  time_c(t) * subj_c(s) * net_c(i) * net_c(j)
                    + noise,

i.e. exactly a CP model whose two region factors coincide — which is also
why CP is the right analysis for such data.  The synthetic tensor matches
the paper's tensor in shape, symmetry, and low-rank-plus-noise structure,
which is everything the computational experiments depend on; CP-ALS
recovering the planted networks end-to-end is validated in the tests and
demonstrated in ``examples/fmri_analysis.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpd.kruskal import KruskalTensor
from repro.data.symmetrize import linearize_symmetric
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import add_noise, from_kruskal

__all__ = ["FMRIDataset", "synthetic_fmri"]


@dataclass
class FMRIDataset:
    """A synthetic dynamic-connectivity dataset.

    Attributes
    ----------
    tensor:
        The 4-way ``time x subject x region x region`` tensor (noisy).
    ground_truth:
        The planted :class:`~repro.cpd.kruskal.KruskalTensor` (noise-free
        model) with factors ``[time, subject, region, region]``.
    """

    tensor: DenseTensor
    ground_truth: KruskalTensor

    @property
    def shape(self) -> tuple[int, ...]:
        return self.tensor.shape

    def to_3way(self, check: bool = False) -> DenseTensor:
        """The paper's symmetric linearization to ``time x subject x pair``.

        ``check=False`` by default because the noisy tensor is symmetric by
        construction here; enable to assert it.
        """
        return linearize_symmetric(self.tensor, check=check)


def _network_loadings(
    n_regions: int, rank: int, rng: np.random.Generator
) -> np.ndarray:
    """Smooth localized region loadings, one column per network."""
    regions = np.arange(n_regions)
    loadings = np.empty((n_regions, rank))
    for c in range(rank):
        center = rng.uniform(0, n_regions)
        width = rng.uniform(0.04, 0.12) * n_regions
        bump = np.exp(-0.5 * ((regions - center) / width) ** 2)
        # Light sparse speckle so networks are not perfectly smooth.
        bump += 0.05 * rng.random(n_regions)
        loadings[:, c] = bump / np.linalg.norm(bump)
    return loadings


def _hrf_kernel(dt: float = 1.0, length: int = 24) -> np.ndarray:
    """Gamma-difference haemodynamic response kernel (canonical shape)."""
    t = np.arange(length) * dt
    # Peak ~6 time units, undershoot ~16; standard double-gamma constants.
    peak = t**5 * np.exp(-t)
    under = t**15 * np.exp(-t)
    peak /= peak.max()
    under /= under.max()
    h = peak - 0.35 * under
    return h / np.abs(h).sum()


def _time_courses(
    n_time: int, rank: int, rng: np.random.Generator
) -> np.ndarray:
    """Task-block activations convolved with an HRF-like kernel."""
    hrf = _hrf_kernel()
    courses = np.empty((n_time, rank))
    for c in range(rank):
        boxcar = np.zeros(n_time)
        n_blocks = rng.integers(2, 5)
        for _ in range(n_blocks):
            start = rng.integers(0, max(n_time - 5, 1))
            width = rng.integers(max(n_time // 20, 3), max(n_time // 6, 4))
            boxcar[start : start + width] = 1.0
        conv = np.convolve(boxcar, hrf)[:n_time]
        conv += 0.05 * rng.standard_normal(n_time)
        nrm = np.linalg.norm(conv)
        courses[:, c] = conv / (nrm if nrm > 0 else 1.0)
    return courses


def _subject_weights(
    n_subjects: int, rank: int, rng: np.random.Generator
) -> np.ndarray:
    """Positive per-subject expression strengths (log-normal variability)."""
    w = rng.lognormal(mean=0.0, sigma=0.4, size=(n_subjects, rank))
    return w / np.linalg.norm(w, axis=0, keepdims=True)


def synthetic_fmri(
    n_time: int = 60,
    n_subjects: int = 16,
    n_regions: int = 48,
    rank: int = 5,
    snr_db: float = 20.0,
    rng: np.random.Generator | int | None = None,
    symmetric_noise: bool = True,
) -> FMRIDataset:
    """Generate a synthetic dynamic-connectivity dataset.

    Default dimensions are a reduced-scale version of the paper's
    225 x 59 x 200 x 200 tensor (pass those values to reproduce paper
    scale, ~4.3 GiB).

    Parameters
    ----------
    n_time, n_subjects, n_regions:
        Tensor dimensions (regions appear twice).
    rank:
        Number of planted networks.
    snr_db:
        Signal-to-noise ratio of the additive Gaussian noise (dB);
        ``float("inf")`` for a noise-free tensor.
    rng:
        Seed or generator.
    symmetric_noise:
        Symmetrize the noise in the region modes so the full tensor stays
        exactly symmetric (as real correlation data is).

    Returns
    -------
    FMRIDataset
    """
    for name, v in [
        ("n_time", n_time),
        ("n_subjects", n_subjects),
        ("n_regions", n_regions),
        ("rank", rank),
    ]:
        if int(v) <= 0:
            raise ValueError(f"{name} must be positive, got {v}")
    rng = np.random.default_rng(rng)
    nets = _network_loadings(n_regions, rank, rng)
    times = _time_courses(n_time, rank, rng)
    subjects = _subject_weights(n_subjects, rank, rng)
    weights = np.linspace(1.0, 0.5, rank)  # distinct, decaying strengths
    truth = KruskalTensor([times, subjects, nets, nets.copy()], weights)

    clean = from_kruskal(truth.factors, truth.weights)
    if not np.isfinite(snr_db):
        return FMRIDataset(tensor=clean, ground_truth=truth)
    noisy = add_noise(clean, snr_db=snr_db, rng=rng)
    if symmetric_noise:
        arr = noisy.to_ndarray()
        # Average the region modes' transpose to restore exact symmetry.
        sym = 0.5 * (arr + np.swapaxes(arr, -1, -2))
        noisy = DenseTensor(sym, noisy.shape)
    return FMRIDataset(tensor=noisy, ground_truth=truth)
