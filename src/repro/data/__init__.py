"""Workload substrates: the synthetic fMRI application and named configs.

The paper's application data — a 225 x 59 x 200 x 200 tensor of
instantaneous correlations between brain regions over time and subjects —
is not publicly available, so :mod:`repro.data.fmri` synthesizes a tensor
with the same structure from a planted model of latent brain networks (see
DESIGN.md for the substitution argument).  :mod:`repro.data.symmetrize`
implements the paper's symmetric linearization of the two region modes
(4-way -> 3-way, halving the entry count), and
:mod:`repro.data.workloads` names every experiment configuration used by
the benchmark harness.
"""

from repro.data.fmri import FMRIDataset, synthetic_fmri
from repro.data.symmetrize import linearize_symmetric, upper_triangle_indices
from repro.data.workloads import (
    FIG4_WORKLOADS,
    FIG5_WORKLOADS,
    FMRI_PAPER_4D,
    FMRI_REDUCED_4D,
    KRPWorkload,
    MTTKRPWorkload,
    fig5_shape,
    scaled_shape,
)

__all__ = [
    "synthetic_fmri",
    "FMRIDataset",
    "linearize_symmetric",
    "upper_triangle_indices",
    "KRPWorkload",
    "MTTKRPWorkload",
    "FIG4_WORKLOADS",
    "FIG5_WORKLOADS",
    "FMRI_PAPER_4D",
    "FMRI_REDUCED_4D",
    "fig5_shape",
    "scaled_shape",
]
