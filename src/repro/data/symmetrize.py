"""Symmetric linearization of paired tensor modes (Section 5.3.3).

The fMRI tensor is symmetric in its two region modes:
``X(t, s, i, j) == X(t, s, j, i)``.  The paper linearizes those two modes
into one, keeping only distinct pairs, which "reduces the number of tensor
entries by a factor of 2": 200 x 200 = 40000 entries per (t, s) slice
become the 19900 strict-upper-triangle pairs (i < j).

With the natural layout the two region modes are the *trailing* modes, so
each (i, j) pair corresponds to a contiguous leading-modes slab; the
linearization is a column selection on a zero-copy matricization view —
cheap, one pass, no index arithmetic per entry.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.util import prod

__all__ = ["upper_triangle_indices", "linearize_symmetric", "expand_symmetric"]


def upper_triangle_indices(n: int, include_diagonal: bool = False) -> np.ndarray:
    """Linearized indices of the (strict) upper triangle of an ``n x n``
    matrix stored column-major (first index fastest, the natural layout).

    Pair ``(i, j)`` with ``i < j`` (or ``i <= j``) maps to linear index
    ``i + j*n``; the result is sorted ascending, so gathering with it
    preserves the canonical pair ordering ``(0,1), (0,2), (1,2), ...``
    grouped by ``j``.
    """
    n = int(n)
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    mask = (i <= j) if include_diagonal else (i < j)
    lin = (i + j * n)[mask]
    return np.sort(lin)


def linearize_symmetric(
    tensor: DenseTensor,
    include_diagonal: bool = False,
    check: bool = True,
    atol: float = 1e-10,
) -> DenseTensor:
    """Merge the two trailing (symmetric) modes into one pair mode.

    ``(I_0, ..., I_{N-3}, R, R) -> (I_0, ..., I_{N-3}, P)`` where
    ``P = R(R-1)/2`` (strict upper triangle) or ``R(R+1)/2`` with the
    diagonal.  This is the paper's 4-way -> 3-way fMRI transformation
    (225 x 59 x 200 x 200 -> 225 x 59 x 19900).

    Parameters
    ----------
    tensor:
        Input tensor whose last two modes have equal size and are symmetric.
    include_diagonal:
        Keep the ``(i, i)`` pairs as well (the paper drops them; for
        correlation data they are identically 1 and carry no information).
    check:
        Verify symmetry of the trailing modes before linearizing (one pass;
        disable for performance on trusted data).
    atol:
        Absolute tolerance for the symmetry check.

    Returns
    -------
    DenseTensor
        The linearized tensor (freshly allocated; selection is a gather).
    """
    if tensor.ndim < 2:
        raise ValueError("need at least two modes to linearize")
    R = tensor.shape[-1]
    if tensor.shape[-2] != R:
        raise ValueError(
            f"trailing modes must be square, got {tensor.shape[-2]} x {R}"
        )
    lead = prod(tensor.shape[:-2])
    # X_(0:N-3): leading modes as rows (natural order), trailing pair
    # linearized as columns — zero-copy column-major view.
    flat = tensor.data.reshape((lead, R * R), order="F")
    if check:
        # Column for (i, j) is i + j*R; its mirror is j + i*R.
        i, j = np.triu_indices(R, k=1)
        if not np.allclose(
            flat[:, i + j * R], flat[:, j + i * R], atol=atol, rtol=0.0
        ):
            raise ValueError(
                "trailing modes are not symmetric within tolerance; "
                "pass check=False to force linearization"
            )
    cols = upper_triangle_indices(R, include_diagonal=include_diagonal)
    selected = flat[:, cols]  # gather: (lead, P), column-major semantics kept
    new_shape = tensor.shape[:-2] + (len(cols),)
    return DenseTensor(selected.ravel(order="F"), new_shape)


def expand_symmetric(
    tensor: DenseTensor,
    region_count: int,
    include_diagonal: bool = False,
    diagonal_value: float = 0.0,
) -> DenseTensor:
    """Inverse of :func:`linearize_symmetric` (for round-trip tests and for
    mapping recovered pair-mode factors back to region space).

    Entries absent from the linearization (the diagonal, when excluded)
    are filled with ``diagonal_value``.
    """
    R = int(region_count)
    P_expected = R * (R + 1) // 2 if include_diagonal else R * (R - 1) // 2
    if tensor.shape[-1] != P_expected:
        raise ValueError(
            f"last mode has {tensor.shape[-1]} entries; expected {P_expected} "
            f"for region_count={R}, include_diagonal={include_diagonal}"
        )
    lead = prod(tensor.shape[:-1])
    flat = tensor.data.reshape((lead, tensor.shape[-1]), order="F")
    out = np.full((lead, R * R), float(diagonal_value))
    cols = upper_triangle_indices(R, include_diagonal=include_diagonal)
    out[:, cols] = flat
    # Mirror (i, j) -> (j, i).
    i, j = np.triu_indices(R, k=0 if include_diagonal else 1)
    out[:, j + i * R] = out[:, i + j * R]
    new_shape = tensor.shape[:-1] + (R, R)
    return DenseTensor(out.ravel(order="F"), new_shape)
