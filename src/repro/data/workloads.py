"""Named workload configurations for every experiment in the paper.

Each figure's workloads are defined once here and consumed by both the
measured harness (:mod:`repro.bench`) and the model-based predictions
(:mod:`repro.machine.predict`), so the two always describe the same
experiment.  ``scale`` shrinks tensors volumetrically for the measured runs
(the paper's 750M-entry tensors need ~6 GiB and a 12-core machine; the
reduced defaults run in seconds on one core) while preserving mode-count,
mode-ratio, and rank — the quantities the algorithms' relative behaviour
depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import prod

__all__ = [
    "KRPWorkload",
    "MTTKRPWorkload",
    "FIG4_WORKLOADS",
    "FIG5_WORKLOADS",
    "FMRI_PAPER_4D",
    "FMRI_REDUCED_4D",
    "FIG7_RANKS",
    "scaled_shape",
    "fig5_shape",
    "krp_dims",
]


def scaled_shape(shape: tuple[int, ...], scale: float) -> tuple[int, ...]:
    """Shrink a tensor shape volumetrically by ``scale`` (entries ratio).

    Each mode is scaled by ``scale**(1/N)`` and floored at 2, so the shape
    keeps its aspect ratio and order.  ``scale=1`` returns the shape
    unchanged.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if scale == 1.0:
        return tuple(shape)
    per_mode = scale ** (1.0 / len(shape))
    return tuple(max(int(round(s * per_mode)), 2) for s in shape)


def fig5_shape(N: int) -> tuple[int, ...]:
    """The paper's Figure 5 tensor for a mode count: equal dims, ~750M
    entries (900^3, 165^4, 60^5, 30^6)."""
    dims = {3: 900, 4: 165, 5: 60, 6: 30}
    if N not in dims:
        raise ValueError(f"Figure 5 covers N in 3..6, got {N}")
    return (dims[N],) * N


def krp_dims(Z: int, total_rows: int = 20_000_000) -> tuple[int, ...]:
    """Figure 4 KRP inputs: ``Z`` equal row dims with product ~``total_rows``."""
    if Z < 1:
        raise ValueError(f"Z must be >= 1, got {Z}")
    d = int(round(total_rows ** (1.0 / Z)))
    return (max(d, 2),) * Z


@dataclass(frozen=True)
class KRPWorkload:
    """One Figure 4 configuration."""

    Z: int
    C: int
    total_rows: int = 20_000_000

    def dims(self, scale: float = 1.0) -> tuple[int, ...]:
        """Input row dimensions at a volumetric scale factor."""
        rows = max(int(self.total_rows * scale), 4)
        return krp_dims(self.Z, rows)

    @property
    def label(self) -> str:
        return f"Z={self.Z}, C={self.C}"


@dataclass(frozen=True)
class MTTKRPWorkload:
    """One Figure 5/6 configuration (a tensor plus a rank)."""

    N: int
    C: int = 25

    def shape(self, scale: float = 1.0) -> tuple[int, ...]:
        """Tensor shape at a volumetric scale factor."""
        return scaled_shape(fig5_shape(self.N), scale)

    @property
    def label(self) -> str:
        base = fig5_shape(self.N)
        return f"N={self.N} ({base[0]}^{self.N}), C={self.C}"

    def entries(self, scale: float = 1.0) -> int:
        return prod(self.shape(scale))


# Figure 4: Z in {2,3,4} x C in {25,50}; J ~ 2e7 output rows.
FIG4_WORKLOADS: tuple[KRPWorkload, ...] = tuple(
    KRPWorkload(Z=Z, C=C) for C in (25, 50) for Z in (2, 3, 4)
)

# Figures 5/6: N in {3,4,5,6}, ~750M entries, C=25.
FIG5_WORKLOADS: tuple[MTTKRPWorkload, ...] = tuple(
    MTTKRPWorkload(N=N) for N in (3, 4, 5, 6)
)

# The application tensors of Figures 7/8.
FMRI_PAPER_4D: tuple[int, ...] = (225, 59, 200, 200)
FMRI_REDUCED_4D: tuple[int, ...] = (60, 16, 48, 48)

# Figure 7 sweeps the CP rank.
FIG7_RANKS: tuple[int, ...] = (10, 15, 20, 25, 30)
