"""Dense-tensor substrate.

Implements the *natural* (generalized column-major) tensor layout from the
paper and exposes every matricization the MTTKRP algorithms need as a
zero-copy numpy view:

* :class:`~repro.tensor.dense.DenseTensor` — a dense N-way tensor stored as
  a flat buffer with linearization ``l = sum_n i_n * I^L_n``;
* :mod:`~repro.tensor.layout` — index arithmetic (``I^L_n``, ``I^R_n``,
  multi-index increment, linearize/delinearize);
* :mod:`~repro.tensor.matricize` — explicit (reordering) unfoldings used by
  the baseline, and the view-based multi-mode matricizations;
* :mod:`~repro.tensor.ttv` / :mod:`~repro.tensor.ttm` — tensor-times-vector
  and tensor-times-matrix without reordering;
* :mod:`~repro.tensor.generate` — random and planted-CP tensor generators.
"""

from repro.tensor.dense import DenseTensor
from repro.tensor.generate import from_kruskal, random_tensor
from repro.tensor.layout import (
    MultiIndex,
    left_product,
    linearize,
    delinearize,
    mode_products,
    right_product,
)
from repro.tensor.matricize import unfold_explicit
from repro.tensor.ttm import ttm
from repro.tensor.ttv import multi_ttv, ttv

__all__ = [
    "DenseTensor",
    "MultiIndex",
    "left_product",
    "right_product",
    "mode_products",
    "linearize",
    "delinearize",
    "unfold_explicit",
    "ttv",
    "multi_ttv",
    "ttm",
    "random_tensor",
    "from_kruskal",
]
