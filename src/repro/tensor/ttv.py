"""Tensor-times-vector (TTV) and multi-TTV without reordering entries.

``Y = X x_n v`` contracts mode ``n`` of ``X`` with the vector ``v``:
``Y(i_0, .., i_{n-1}, i_{n+1}, ..) = sum_{i_n} X(...) * v(i_n)``.

The 2-step MTTKRP's second phase (Alg. 4 lines 6-9 / 12-15) is a
*multi-TTV*: for each of the ``C`` output columns, contract a subtensor of
the intermediate quantity with one column from each remaining factor matrix.
The paper observes each such TTV chain reduces to a single GEMV on a
contiguous matricization view; :func:`multi_ttv` implements exactly that.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.util import prod
from repro.util.validation import check_mode

__all__ = ["ttv", "ttv_chain", "multi_ttv"]


def ttv(tensor: DenseTensor, vector: np.ndarray, n: int) -> DenseTensor | float:
    """Contract mode ``n`` of ``tensor`` with ``vector`` (no reordering).

    Uses the block structure of ``X_(n)`` (Figure 2): each of the ``I^R_n``
    row-major ``I_n x I^L_n`` blocks contributes one GEMV
    ``block^T . v`` producing ``I^L_n`` contiguous output entries, so the
    output is built in natural layout directly.

    Returns
    -------
    DenseTensor or float
        The order-``N-1`` result, or a Python float when ``N == 1``.
    """
    n = check_mode(n, tensor.ndim)
    vector = np.asarray(vector)
    if vector.ndim != 1:
        raise ValueError(f"vector must be 1-D, got ndim={vector.ndim}")
    if vector.shape[0] != tensor.shape[n]:
        raise ValueError(
            f"vector length {vector.shape[0]} does not match mode-{n} size "
            f"{tensor.shape[n]}"
        )
    blocks = tensor.mode_blocks_view(n)  # (IRn, In, ILn)
    # Contract the middle axis with the vector: one matvec per block,
    # batched by numpy into a single einsum/GEMV sweep.
    out = np.einsum("jil,i->jl", blocks, vector, optimize=True)
    new_shape = tensor.shape[:n] + tensor.shape[n + 1 :]
    if len(new_shape) == 0:
        return float(out.ravel()[0])
    # out is (IRn, ILn) row-major: entry (r, l) sits at offset l + r*ILn,
    # which is exactly the natural layout of the contracted tensor.
    return DenseTensor(out.ravel(), new_shape)


def ttv_chain(
    tensor: DenseTensor, vectors: Sequence[np.ndarray], modes: Sequence[int]
) -> DenseTensor | float:
    """Apply a sequence of TTVs, tracking mode renumbering automatically.

    ``modes`` refer to modes of the *original* tensor; after each
    contraction the remaining modes shift down, which this helper accounts
    for (so callers can write ``ttv_chain(X, [u, w], [0, 2])`` naturally).
    """
    if len(vectors) != len(modes):
        raise ValueError("vectors and modes must have equal length")
    modes = [check_mode(m, tensor.ndim) for m in modes]
    if len(set(modes)) != len(modes):
        raise ValueError(f"modes must be distinct, got {modes}")
    result: DenseTensor | float = tensor
    # Process in decreasing mode order so earlier indices stay valid.
    for m, v in sorted(zip(modes, vectors), key=lambda t: -t[0]):
        if not isinstance(result, DenseTensor):
            raise ValueError("cannot contract a fully reduced tensor further")
        result = ttv(result, v, m)
    return result


def _k_multi_ttv(
    worker: int,
    jstart: int,
    jstop: int,
    intermediate: DenseTensor,
    factors: list[np.ndarray],
    leading: bool,
    out: np.ndarray,
) -> None:
    """Region kernel: columns ``[jstart, jstop)`` of the multi-TTV output.

    Column ``j`` touches only subtensor ``j`` of the intermediate and
    writes only ``out[:, j]``, so workers are conflict-free.  Module-level
    (picklable) for the process backend; the matricization views rebuilt
    here have the parent's exact strides, so per-column arithmetic — and
    hence the result — is identical on every backend.
    """
    inner_shape = intermediate.shape[:-1]
    flat = intermediate.unfold_front(intermediate.ndim - 2)
    if leading:
        out_dim, ncols = inner_shape[0], prod(inner_shape[1:])
        for j in range(jstart, jstop):
            sub = flat[:, j].reshape((out_dim, ncols), order="F")
            out[:, j] = sub @ _krp_column(factors, j)
    else:
        out_dim, nrows = inner_shape[-1], prod(inner_shape[:-1])
        for j in range(jstart, jstop):
            sub = flat[:, j].reshape((nrows, out_dim), order="F")
            out[:, j] = _krp_column(factors, j) @ sub


def multi_ttv(
    intermediate: DenseTensor,
    factors: Sequence[np.ndarray],
    leading: bool,
    executor=None,
) -> np.ndarray:
    """The 2nd step of 2-step MTTKRP: C independent TTV chains as GEMVs.

    Parameters
    ----------
    intermediate:
        The partial-MTTKRP result reinterpreted as a tensor whose **last**
        mode has size ``C`` (the rank).  For the right-first ordering this is
        ``R`` of shape ``I_0 x .. x I_n x C``; for left-first it is ``L`` of
        shape ``I_n x .. x I_{N-1} x C``.
    factors:
        The factor matrices whose columns are contracted against each
        subtensor — all modes of ``intermediate`` except the output mode and
        the trailing rank mode, in increasing mode order.
    leading:
        ``True`` when the *output* mode is the leading mode of
        ``intermediate`` (left-first ordering, Figure 3d: contract trailing
        modes); ``False`` when it is the last tensor mode before the rank
        mode (right-first ordering, Figure 3b: contract leading modes).
    executor:
        Optional :class:`~repro.parallel.backend.Executor`.  On a process
        executor with more than one worker the column loop — a Python-level
        loop of small GEMVs that the GIL serializes under threads — is
        distributed over the worker team (disjoint output columns, no
        reduction).  Otherwise the loop runs inline as before.

    Returns
    -------
    numpy.ndarray
        The ``I_n x C`` MTTKRP output.

    Notes
    -----
    For each column ``j``, the chain of TTVs against rank-``j`` factor
    columns is algebraically one matvec between a contiguous matricization
    of subtensor ``j`` and the ``j``-th KRP column of the factors
    (Figure 3b/3d).  We exploit that here: the per-column work is a single
    GEMV on a zero-copy view, exactly as in the paper.
    """
    C = intermediate.shape[-1]
    facs = [np.asarray(f) for f in factors]
    for f in facs:
        if f.ndim != 2 or f.shape[1] != C:
            raise ValueError(
                f"every factor must be 2-D with {C} columns, got {f.shape}"
            )
    inner_shape = intermediate.shape[:-1]
    if leading:
        out_dim = inner_shape[0]
        contract_dims = inner_shape[1:]
    else:
        out_dim = inner_shape[-1]
        contract_dims = inner_shape[:-1]
    if tuple(f.shape[0] for f in facs) != tuple(contract_dims):
        raise ValueError(
            f"factor row counts {tuple(f.shape[0] for f in facs)} "
            f"do not match contracted dims {tuple(contract_dims)}"
        )

    if (
        executor is not None
        and executor.backend == "process"
        and executor.num_workers > 1
    ):
        out = executor.allocate_shared((out_dim, C), dtype=intermediate.dtype)
        executor.parallel_for(
            _k_multi_ttv,
            C,
            args=(intermediate, facs, leading, out),
            label="multi_ttv.columns",
        )
        return out

    out = np.empty((out_dim, C), dtype=intermediate.dtype)
    _k_multi_ttv(0, 0, C, intermediate, facs, leading, out)
    return out


def _krp_column(factors: Sequence[np.ndarray], j: int) -> np.ndarray:
    """Column ``j`` of ``U_{Z-1} (krp) ... (krp) U_0`` for the given factors.

    With factors listed in *increasing mode order*, the natural-layout KRP
    column has the first factor's index varying fastest, i.e. it is the
    Kronecker product taken right-to-left.
    """
    col = np.asarray(factors[0])[:, j]
    for f in factors[1:]:
        col = np.kron(np.asarray(f)[:, j], col)
    return col
