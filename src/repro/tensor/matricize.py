"""Explicit tensor matricizations (unfoldings) that *reorder* entries.

The paper's algorithms never reorder tensor entries; these routines exist to
implement the straightforward baseline of Bader & Kolda (Section 2.3) — form
``X_(n)`` explicitly, form the KRP explicitly, and do one GEMM — and to give
the test-suite an independent reference for the zero-copy views in
:class:`repro.tensor.dense.DenseTensor`.

Conventions match Section 2.1 of the paper: ``X_(n)`` is ``I_n x I_{!=n}``
and its columns are ordered by the natural linearization of the remaining
modes (lower modes vary fastest).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.util import prod
from repro.util.validation import check_mode

__all__ = ["unfold_explicit", "fold_explicit", "unfold_front_explicit"]


def unfold_explicit(tensor: DenseTensor, n: int, order: str = "C") -> np.ndarray:
    """Form the mode-``n`` matricization ``X_(n)`` as a new dense matrix.

    This **copies and reorders** tensor entries (the memory-bound operation
    the paper's algorithms avoid) for every mode except those whose
    matricization is already contiguous.

    Parameters
    ----------
    tensor:
        Input tensor.
    n:
        Mode to map to rows.
    order:
        Memory order of the result, ``"C"`` (row-major) or ``"F"``
        (column-major).  The baseline MTTKRP uses column-major to feed a
        single textbook GEMM.

    Returns
    -------
    numpy.ndarray
        Contiguous ``I_n x I_{!=n}`` matrix.
    """
    n = check_mode(n, tensor.ndim)
    if order not in ("C", "F"):
        raise ValueError(f"order must be 'C' or 'F', got {order!r}")
    arr = tensor.to_ndarray()
    moved = np.moveaxis(arr, n, 0)
    # Fortran-order ravel of the trailing axes keeps lower modes fastest,
    # matching the natural linearization of the column modes.
    mat = moved.reshape((tensor.shape[n], -1), order="F")
    return np.asarray(mat, order=order)


def fold_explicit(
    matrix: np.ndarray, n: int, shape: Sequence[int]
) -> DenseTensor:
    """Inverse of :func:`unfold_explicit`: rebuild the tensor from ``X_(n)``."""
    shape = tuple(int(s) for s in shape)
    n = check_mode(n, len(shape))
    matrix = np.asarray(matrix)
    expected = (shape[n], prod(shape) // shape[n])
    if matrix.shape != expected:
        raise ValueError(
            f"matrix shape {matrix.shape} does not match mode-{n} unfolding "
            f"{expected} of tensor shape {shape}"
        )
    rest = tuple(s for k, s in enumerate(shape) if k != n)
    moved = matrix.reshape((shape[n],) + rest, order="F")
    arr = np.moveaxis(moved, 0, n)
    return DenseTensor(arr, shape)


def unfold_front_explicit(tensor: DenseTensor, n: int) -> np.ndarray:
    """Explicit-copy reference for ``X_(0:n)`` (used only by tests).

    Returns a freshly allocated column-major matrix equal to
    :meth:`repro.tensor.dense.DenseTensor.unfold_front`, built through
    independent index arithmetic so the two implementations can be checked
    against each other.
    """
    n = check_mode(n, tensor.ndim)
    rows = prod(tensor.shape[: n + 1])
    cols = tensor.size // rows
    out = np.empty((rows, cols), order="F", dtype=tensor.dtype)
    arr = tensor.to_ndarray()
    # Row index linearizes modes 0..n (mode 0 fastest); column index
    # linearizes modes n+1..N-1 (mode n+1 fastest).
    flat = arr.ravel(order="F")
    out[...] = flat.reshape((rows, cols), order="F")
    return out
