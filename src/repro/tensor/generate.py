"""Tensor generators: random dense tensors and planted Kruskal (CP) models.

These are the workload generators for the synthetic experiments (Figures
4-6 use random dense tensors of ~equal mode sizes; the CP-recovery tests and
the fMRI substrate use planted low-rank models plus noise).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.util import prod
from repro.util.validation import check_factor_matrices

__all__ = ["random_tensor", "random_factors", "from_kruskal", "add_noise"]


def random_tensor(
    shape: Sequence[int],
    rng: np.random.Generator | int | None = None,
    dtype=np.float64,
    distribution: str = "uniform",
) -> DenseTensor:
    """Dense tensor with i.i.d. random entries in natural layout.

    Parameters
    ----------
    shape:
        Tensor dimensions.
    rng:
        :class:`numpy.random.Generator`, an integer seed, or ``None`` for
        nondeterministic seeding.
    dtype:
        Floating dtype of the entries.
    distribution:
        ``"uniform"`` (entries in ``[0, 1)``, as in typical MTTKRP
        benchmarks) or ``"normal"`` (standard Gaussian).
    """
    rng = np.random.default_rng(rng)
    size = prod(tuple(int(s) for s in shape))
    if distribution == "uniform":
        data = rng.random(size, dtype=np.float64)
    elif distribution == "normal":
        data = rng.standard_normal(size)
    else:
        raise ValueError(f"unknown distribution {distribution!r}")
    return DenseTensor(data.astype(dtype, copy=False), shape)


def random_factors(
    shape: Sequence[int],
    rank: int,
    rng: np.random.Generator | int | None = None,
    dtype=np.float64,
    distribution: str = "uniform",
) -> list[np.ndarray]:
    """One random ``I_n x C`` factor matrix per mode.

    The matrices are C-contiguous (row-major), matching how factor matrices
    are stored and traversed row-wise by the KRP algorithms.
    """
    rng = np.random.default_rng(rng)
    rank = int(rank)
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    factors = []
    for s in shape:
        if distribution == "uniform":
            f = rng.random((int(s), rank), dtype=np.float64)
        elif distribution == "normal":
            f = rng.standard_normal((int(s), rank))
        else:
            raise ValueError(f"unknown distribution {distribution!r}")
        factors.append(np.ascontiguousarray(f.astype(dtype, copy=False)))
    return factors


def from_kruskal(
    factors: Sequence[np.ndarray],
    weights: np.ndarray | None = None,
) -> DenseTensor:
    """Materialize the dense tensor of a Kruskal (CP) model.

    ``X(i_0, .., i_{N-1}) = sum_c w_c * prod_n U_n(i_n, c)`` — the
    reconstruction in Figure 1 of the paper.  Built as ``X_(0) = U_0 *
    diag(w) * (U_{N-1} krp ... krp U_1)^T`` using the same KRP machinery the
    algorithms use, then folded for free thanks to the natural layout.
    """
    shape = tuple(int(np.asarray(f).shape[0]) for f in factors)
    rank = check_factor_matrices(list(factors), shape)
    if weights is None:
        weights = np.ones(rank)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (rank,):
        raise ValueError(
            f"weights must have shape ({rank},), got {weights.shape}"
        )
    # Local import: repro.core imports repro.tensor, so defer to avoid a cycle.
    from repro.core.krp import khatri_rao

    first = np.asarray(factors[0]) * weights  # fold weights into mode 0
    if len(factors) == 1:
        mat = first.sum(axis=1)[:, None]
        return DenseTensor(mat.ravel(order="F"), shape)
    rest = khatri_rao([np.asarray(f) for f in reversed(factors[1:])])
    mat = first @ rest.T  # X_(0), column order = natural layout of modes 1..
    return DenseTensor(mat.ravel(order="F"), shape)


def add_noise(
    tensor: DenseTensor,
    snr_db: float,
    rng: np.random.Generator | int | None = None,
) -> DenseTensor:
    """Add Gaussian noise at a prescribed signal-to-noise ratio (in dB).

    Used by the fMRI substrate and the CP-recovery examples.  The returned
    tensor satisfies ``10*log10(|X|^2 / |E|^2) ~= snr_db`` in expectation.
    """
    rng = np.random.default_rng(rng)
    noise = rng.standard_normal(tensor.size)
    signal_norm = tensor.norm()
    if signal_norm == 0.0:
        raise ValueError("cannot set an SNR on an all-zero tensor")
    noise *= signal_norm / np.linalg.norm(noise) * 10.0 ** (-snr_db / 20.0)
    return DenseTensor(tensor.data + noise.astype(tensor.dtype), tensor.shape)
