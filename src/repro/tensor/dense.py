"""Dense N-way tensor in the paper's natural (generalized column-major) layout.

:class:`DenseTensor` stores tensor entries in a flat 1-D buffer using the
linearization of Section 2.1: entry ``(i_0, ..., i_{N-1})`` lives at offset
``l = sum_n i_n * I^L_n`` (mode 0 fastest; Fortran order in numpy terms).

The entire point of this class — and of the paper's algorithms — is that with
this single fixed layout, every matricization the MTTKRP algorithms need is a
**zero-copy numpy view** of the buffer:

* ``X_(0)``  is column-major                       (:meth:`unfold_mode0`);
* ``X_(N-1)`` is row-major                         (:meth:`unfold_last`);
* ``X_(n)`` for internal ``n`` is a contiguous sequence of ``I^R_n``
  row-major ``I_n x I^L_n`` blocks                 (:meth:`mode_blocks_view`);
* ``X_(0:n)`` (modes ``0..n`` mapped to rows) is column-major
                                                   (:meth:`unfold_front`);
* ``X_(0:n-1)^T`` is row-major — it is simply ``unfold_front(n-1).T``.

No method of this class ever copies the tensor data; the explicit
(reordering) unfoldings used by the baseline algorithm live in
:mod:`repro.tensor.matricize` instead.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.tensor.layout import mode_products
from repro.util import human_bytes, prod
from repro.util.validation import check_mode

__all__ = ["DenseTensor"]


class DenseTensor:
    """A dense N-way tensor stored in natural layout.

    Parameters
    ----------
    data:
        Either a 1-D array of length ``prod(shape)`` already in natural
        layout, or an N-D array whose conventional numpy indexing
        ``data[i0, ..., iN-1]`` matches the tensor's entries (it will be
        flattened in Fortran order, copying only if necessary).
    shape:
        Tensor dimensions ``(I_0, ..., I_{N-1})``.  Required when ``data``
        is 1-D; inferred (and checked, if also given) when ``data`` is N-D.
    dtype:
        Optional dtype override; defaults to ``data``'s dtype (typically
        ``float64``, matching the paper's double-precision experiments).

    Notes
    -----
    The flat buffer is always C-contiguous 1-D; "Fortran order" lives purely
    in the index arithmetic.  ``DenseTensor`` is intentionally *not* an
    ndarray subclass: the algorithms in :mod:`repro.core` only consume the
    specific views exposed here, and keeping the surface small makes the
    layout invariants easy to audit.
    """

    __slots__ = ("_data", "_shape")

    def __init__(
        self,
        data: np.ndarray,
        shape: Sequence[int] | None = None,
        dtype: np.dtype | type | None = None,
    ) -> None:
        arr = np.asarray(data, dtype=dtype)
        if arr.ndim == 1:
            if shape is None:
                raise ValueError("shape is required when data is 1-D")
            shape = tuple(int(s) for s in shape)
            if prod(shape) != arr.size:
                raise ValueError(
                    f"data has {arr.size} entries but shape {shape} implies "
                    f"{prod(shape)}"
                )
            flat = np.ascontiguousarray(arr)
        else:
            if shape is not None and tuple(int(s) for s in shape) != arr.shape:
                raise ValueError(
                    f"explicit shape {tuple(shape)} does not match data shape "
                    f"{arr.shape}"
                )
            shape = arr.shape
            # Fortran-order ravel realizes the natural linearization
            # (mode 0 fastest).  This is the only place construction may copy.
            flat = arr.ravel(order="F")
            flat = np.ascontiguousarray(flat)
        if len(shape) == 0:
            raise ValueError("0-way tensors are not supported")
        for n, s in enumerate(shape):
            if s <= 0:
                raise ValueError(f"mode {n} has non-positive size {s}")
        self._data = flat
        self._shape = tuple(shape)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, ...]:
        """Tensor dimensions ``(I_0, ..., I_{N-1})``."""
        return self._shape

    @property
    def ndim(self) -> int:
        """Number of modes ``N``."""
        return len(self._shape)

    @property
    def size(self) -> int:
        """Total number of entries ``I``."""
        return self._data.size

    @property
    def dtype(self) -> np.dtype:
        """Entry dtype."""
        return self._data.dtype

    @property
    def nbytes(self) -> int:
        """Buffer size in bytes."""
        return self._data.nbytes

    @property
    def data(self) -> np.ndarray:
        """The flat natural-layout buffer (1-D, C-contiguous).

        Mutating this array mutates the tensor.
        """
        return self._data

    def __repr__(self) -> str:
        dims = "x".join(str(s) for s in self._shape)
        return (
            f"DenseTensor({dims}, dtype={self.dtype.name}, "
            f"{human_bytes(self.nbytes)})"
        )

    # ------------------------------------------------------------------ #
    # Conversion and element access
    # ------------------------------------------------------------------ #

    def to_ndarray(self) -> np.ndarray:
        """Return an N-D view with conventional numpy indexing semantics.

        The returned array is a zero-copy Fortran-ordered view; element
        ``(i0, ..., iN-1)`` equals the tensor entry at that multi-index.
        """
        return self._data.reshape(self._shape, order="F")

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        arr = self.to_ndarray()
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        if copy:
            arr = arr.copy()
        return arr

    def __getitem__(self, key):
        return self.to_ndarray()[key]

    def __setitem__(self, key, value) -> None:
        self.to_ndarray()[key] = value

    def copy(self) -> "DenseTensor":
        """Deep copy of the tensor."""
        return DenseTensor(self._data.copy(), self._shape)

    def astype(self, dtype) -> "DenseTensor":
        """Copy with converted dtype."""
        return DenseTensor(self._data.astype(dtype), self._shape)

    def norm(self) -> float:
        """Frobenius norm of the tensor."""
        return float(np.linalg.norm(self._data))

    # ------------------------------------------------------------------ #
    # Zero-copy matricization views (the paper's Figure 2)
    # ------------------------------------------------------------------ #

    def unfold_front(self, n: int) -> np.ndarray:
        """``X_(0:n)``: modes ``0..n`` as rows, modes ``n+1..N-1`` as columns.

        The result is a **column-major (Fortran-contiguous) zero-copy view**
        of shape ``(I_0 * ... * I_n, I_{n+1} * ... * I_{N-1})``.  This is the
        matrix the 2-step algorithm multiplies by the right partial KRP with
        one BLAS call (Figure 3a).  For ``n == N-1`` the column count is 1.

        ``X_(0:n-1)^T``, the row-major matrix used by the *left* partial
        MTTKRP (Figure 3c), is simply ``unfold_front(n-1).T``.
        """
        n = check_mode(n, self.ndim)
        rows = prod(self._shape[: n + 1])
        cols = self.size // rows
        view = self._data.reshape((rows, cols), order="F")
        assert view.base is not None or view is self._data  # zero-copy
        return view

    def unfold_mode0(self) -> np.ndarray:
        """``X_(0)`` as a column-major zero-copy view (``I_0 x I_{!=0}``).

        Mode-0 MTTKRP is a single BLAS call on this view (Alg. 2 line 4).
        """
        return self.unfold_front(0)

    def unfold_last(self) -> np.ndarray:
        """``X_(N-1)`` as a **row-major** zero-copy view (``I_{N-1} x I^L``).

        The mode-``N-1`` matricization with natural layout is row-major, so
        MTTKRP for the last mode is also a single BLAS call.
        """
        last = self.ndim - 1
        rows = self._shape[last]
        cols = self.size // rows
        return self._data.reshape((rows, cols))  # C order

    def mode_blocks_view(self, n: int) -> np.ndarray:
        """``X_(n)`` as ``I^R_n`` contiguous row-major blocks (Figure 2).

        Returns a zero-copy 3-D view of shape ``(I^R_n, I_n, I^L_n)`` where
        ``view[j]`` is the ``j``-th column block of the mode-``n``
        matricization: an ``I_n x I^L_n`` **row-major** matrix.  Each block
        multiply in the 1-step algorithm (Alg. 2 line 9 / Alg. 3 line 16) is
        a BLAS call on ``view[j]``.

        Valid for every mode; for ``n == 0`` blocks have one column and for
        ``n == N-1`` there is a single block (equal to :meth:`unfold_last`).
        """
        n = check_mode(n, self.ndim)
        p = mode_products(self._shape, n)
        return self._data.reshape((p.right, p.size, p.left))  # C order

    def fiber(self, n: int, fixed: Sequence[int]) -> np.ndarray:
        """A single mode-``n`` fiber as a strided zero-copy view.

        Parameters
        ----------
        n:
            The free mode.
        fixed:
            Multi-index of length ``N-1`` giving the fixed indices of the
            remaining modes, in increasing mode order.
        """
        n = check_mode(n, self.ndim)
        if len(fixed) != self.ndim - 1:
            raise ValueError(
                f"fixed must have {self.ndim - 1} components, got {len(fixed)}"
            )
        key = list(fixed)
        key.insert(n, slice(None))
        return self.to_ndarray()[tuple(key)]

    # ------------------------------------------------------------------ #
    # Structural operations (these allocate new tensors)
    # ------------------------------------------------------------------ #

    def permute(self, order: Sequence[int]) -> "DenseTensor":
        """Reorder modes (generalized transpose).  Copies the data.

        This is exactly the operation the paper's algorithms avoid; it is
        provided for the explicit-reorder baseline and for tests.
        """
        order = tuple(int(o) for o in order)
        if sorted(order) != list(range(self.ndim)):
            raise ValueError(f"order must be a permutation of modes, got {order}")
        return DenseTensor(np.transpose(self.to_ndarray(), order))

    def reshape_modes(self, new_shape: Sequence[int]) -> "DenseTensor":
        """Reinterpret the flat buffer under a different mode structure.

        The natural layout makes this free (no data movement) as long as the
        total entry count matches — e.g. merging adjacent modes.  Used by the
        fMRI pipeline to linearize the two region modes.
        """
        new_shape = tuple(int(s) for s in new_shape)
        if prod(new_shape) != self.size:
            raise ValueError(
                f"cannot reshape {self.size} entries to shape {new_shape}"
            )
        return DenseTensor(self._data, new_shape)

    def allclose(self, other: "DenseTensor", **kwargs) -> bool:
        """Elementwise comparison helper for tests."""
        if not isinstance(other, DenseTensor) or self.shape != other.shape:
            return False
        return bool(np.allclose(self._data, other._data, **kwargs))
