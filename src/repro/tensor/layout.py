"""Index arithmetic for the natural (generalized column-major) tensor layout.

The paper (Section 2.1) linearizes the entry at multi-index
``(i_0, ..., i_{N-1})`` of an ``I_0 x ... x I_{N-1}`` tensor to

    l = sum_{n in [N]} i_n * I^L_n,

where ``I^L_n = prod_{k < n} I_k`` is the product of the mode sizes to the
*left* of mode ``n``.  Mode 0 therefore varies fastest — the layout is the
N-way generalization of column-major matrix order (Fortran order in numpy
terms).

This module provides the mode-size products used throughout the MTTKRP
algorithms:

* ``I^L_n`` (:func:`left_product`) — product of modes left of ``n``;
* ``I^R_n`` (:func:`right_product`) — product of modes right of ``n``;
* ``I_{!=n}`` — product of all modes but ``n`` (via :func:`mode_products`);

plus linearize/delinearize conversions and :class:`MultiIndex`, the odometer
style multi-index used by the row-wise Khatri-Rao product (Algorithm 1).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.util import prod

__all__ = [
    "left_product",
    "right_product",
    "mode_products",
    "ModeProducts",
    "linearize",
    "delinearize",
    "linearize_many",
    "delinearize_many",
    "MultiIndex",
]


def _check_shape(shape: Sequence[int]) -> tuple[int, ...]:
    shape = tuple(int(s) for s in shape)
    if len(shape) == 0:
        raise ValueError("tensor shape must have at least one mode")
    for n, s in enumerate(shape):
        if s <= 0:
            raise ValueError(f"mode {n} has non-positive size {s}")
    return shape


def left_product(shape: Sequence[int], mode: int) -> int:
    """``I^L_n``: product of mode sizes strictly left of ``mode``.

    >>> left_product((2, 3, 4), 2)
    6
    >>> left_product((2, 3, 4), 0)
    1
    """
    shape = _check_shape(shape)
    if not 0 <= mode < len(shape):
        raise ValueError(f"mode {mode} out of range for shape {shape}")
    return prod(shape[:mode])


def right_product(shape: Sequence[int], mode: int) -> int:
    """``I^R_n``: product of mode sizes strictly right of ``mode``.

    >>> right_product((2, 3, 4), 0)
    12
    >>> right_product((2, 3, 4), 2)
    1
    """
    shape = _check_shape(shape)
    if not 0 <= mode < len(shape):
        raise ValueError(f"mode {mode} out of range for shape {shape}")
    return prod(shape[mode + 1 :])


@dataclass(frozen=True)
class ModeProducts:
    """All layout products for one mode of a tensor shape.

    Attributes
    ----------
    mode:
        The mode index ``n``.
    size:
        ``I_n``, the size of the mode itself.
    left:
        ``I^L_n``, product of modes left of ``n`` (1 for ``n == 0``).
    right:
        ``I^R_n``, product of modes right of ``n`` (1 for ``n == N-1``).
    other:
        ``I_{!=n} = I^L_n * I^R_n``, product of all modes but ``n`` — the
        number of mode-``n`` fibers, i.e. the column count of ``X_(n)``.
    total:
        ``I``, total number of tensor entries.
    """

    mode: int
    size: int
    left: int
    right: int
    other: int
    total: int


def mode_products(shape: Sequence[int], mode: int) -> ModeProducts:
    """Compute :class:`ModeProducts` for ``mode`` of ``shape``.

    >>> mode_products((2, 3, 4), 1)
    ModeProducts(mode=1, size=3, left=2, right=4, other=8, total=24)
    """
    shape = _check_shape(shape)
    if not 0 <= mode < len(shape):
        raise ValueError(f"mode {mode} out of range for shape {shape}")
    left = prod(shape[:mode])
    right = prod(shape[mode + 1 :])
    return ModeProducts(
        mode=mode,
        size=shape[mode],
        left=left,
        right=right,
        other=left * right,
        total=left * shape[mode] * right,
    )


def linearize(index: Sequence[int], shape: Sequence[int]) -> int:
    """Map a multi-index to its natural-layout linear offset.

    Implements ``l = sum_n i_n * I^L_n`` (mode 0 fastest).

    >>> linearize((1, 2, 3), (2, 3, 4))
    23
    """
    shape = _check_shape(shape)
    if len(index) != len(shape):
        raise ValueError(
            f"index has {len(index)} components but shape has {len(shape)} modes"
        )
    offset = 0
    stride = 1
    for i, s in zip(index, shape):
        i = int(i)
        if not 0 <= i < s:
            raise ValueError(f"index component {i} out of range [0, {s})")
        offset += i * stride
        stride *= s
    return offset


def delinearize(offset: int, shape: Sequence[int]) -> tuple[int, ...]:
    """Inverse of :func:`linearize`.

    >>> delinearize(23, (2, 3, 4))
    (1, 2, 3)
    """
    shape = _check_shape(shape)
    total = prod(shape)
    offset = int(offset)
    if not 0 <= offset < total:
        raise ValueError(f"offset {offset} out of range [0, {total})")
    index = []
    for s in shape:
        index.append(offset % s)
        offset //= s
    return tuple(index)


def linearize_many(indices: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Vectorized :func:`linearize` for an ``(M, N)`` array of multi-indices."""
    shape = _check_shape(shape)
    indices = np.asarray(indices)
    if indices.ndim != 2 or indices.shape[1] != len(shape):
        raise ValueError(
            f"indices must be (M, {len(shape)}), got shape {indices.shape}"
        )
    strides = np.empty(len(shape), dtype=np.int64)
    stride = 1
    for n, s in enumerate(shape):
        strides[n] = stride
        stride *= s
    return indices @ strides


def delinearize_many(offsets: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Vectorized :func:`delinearize`: ``(M,)`` offsets to ``(M, N)`` indices."""
    shape = _check_shape(shape)
    offsets = np.asarray(offsets, dtype=np.int64).copy()
    out = np.empty((offsets.shape[0], len(shape)), dtype=np.int64)
    for n, s in enumerate(shape):
        out[:, n] = offsets % s
        offsets //= s
    return out


class MultiIndex:
    """Odometer-style multi-index over a mixed-radix space.

    This is the multi-index ``l`` of Algorithm 1 in the paper.  The row-wise
    Khatri-Rao product enumerates rows of the output matrix; row ``j``
    corresponds to one row index into each input matrix.  Critically for the
    *parallel* KRP, a :class:`MultiIndex` can be initialized at an arbitrary
    starting row (each thread starts at its block's first row).

    The ordering matches the KRP row-index convention
    ``j = r_A * I_B * I_C + r_B * I_C + r_C`` for ``K = A (krp) B (krp) C``:
    the **last** radix varies fastest.  (Note this is the reverse of the
    tensor linearization above, where mode 0 varies fastest; the KRP of
    factor matrices for mode-``n`` MTTKRP takes its inputs in reversed mode
    order, which is exactly what makes the two conventions line up.)

    Parameters
    ----------
    radices:
        Sizes of each digit position (row counts of the KRP input matrices,
        in KRP order: leftmost input = slowest digit).
    start:
        Initial flat position (default 0).

    Examples
    --------
    >>> m = MultiIndex((2, 3))
    >>> [tuple(m.digits) for _ in range(3) if m.increment() or True]
    [(0, 1), (0, 2), (1, 0)]
    """

    __slots__ = ("radices", "digits", "position", "_changed_from")

    def __init__(self, radices: Sequence[int], start: int = 0) -> None:
        self.radices = tuple(int(r) for r in radices)
        if len(self.radices) == 0:
            raise ValueError("radices must be non-empty")
        for r in self.radices:
            if r <= 0:
                raise ValueError(f"all radices must be positive, got {r}")
        total = prod(self.radices)
        start = int(start)
        if not 0 <= start < total:
            raise ValueError(f"start {start} out of range [0, {total})")
        self.position = start
        # Decompose start with the LAST radix fastest.
        digits = []
        rem = start
        for r in reversed(self.radices):
            digits.append(rem % r)
            rem //= r
        self.digits = list(reversed(digits))
        self._changed_from = 0  # all digits considered fresh initially

    @property
    def total(self) -> int:
        """Total number of positions in the mixed-radix space."""
        return prod(self.radices)

    def increment(self) -> int:
        """Advance to the next position and return the smallest digit index
        that changed.

        The return value tells Algorithm 1 which partial Hadamard products
        must be recomputed: if digit ``d`` changed then all partial products
        involving digits ``>= d`` are stale.  Incrementing past the last
        position wraps to zero (returns 0).
        """
        self.position = (self.position + 1) % self.total
        for d in range(len(self.radices) - 1, -1, -1):
            self.digits[d] += 1
            if self.digits[d] < self.radices[d]:
                self._changed_from = d
                return d
            self.digits[d] = 0
        self._changed_from = 0
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiIndex(radices={self.radices}, digits={tuple(self.digits)}, "
            f"position={self.position})"
        )
