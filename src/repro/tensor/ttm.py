"""Tensor-times-matrix (TTM) without reordering entries.

``Y = X x_n M`` is defined by ``Y_(n) = M^T X_(n)`` (Section 2.1).  The
paper cites TTM work (Li et al. [14], Austin et al. [5]) as the origin of
the block-matricization idea reused by 1-step MTTKRP; we implement TTM with
the same zero-copy block views, both because the Tucker-style substrate is
useful in its own right (e.g. HOSVD-flavoured CP initialization) and because
it exercises the identical layout machinery from an independent direction in
the tests.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.util.validation import check_mode

__all__ = ["ttm"]


def ttm(tensor: DenseTensor, matrix: np.ndarray, n: int) -> DenseTensor:
    """Multiply mode ``n`` of ``tensor`` by ``matrix`` (``Y_(n) = M^T X_(n)``).

    The mode-``n`` size changes from ``I_n`` to ``M.shape[1]``; all other
    modes are untouched.  Internally one GEMM per ``I^R_n`` block of the
    matricization view, writing each output block directly into the natural
    layout of the result — no tensor entries are reordered.

    Parameters
    ----------
    tensor:
        Input tensor.
    matrix:
        ``I_n x J`` matrix (note the orientation: *columns* index the new
        mode size, matching ``Y_(n) = M^T X_(n)``).
    n:
        Contraction mode.
    """
    n = check_mode(n, tensor.ndim)
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got ndim={matrix.ndim}")
    if matrix.shape[0] != tensor.shape[n]:
        raise ValueError(
            f"matrix has {matrix.shape[0]} rows but mode-{n} size is "
            f"{tensor.shape[n]}"
        )
    J = matrix.shape[1]
    blocks = tensor.mode_blocks_view(n)  # (IRn, In, ILn), each block row-major
    new_shape = tensor.shape[:n] + (J,) + tensor.shape[n + 1 :]
    out_flat = np.empty(
        blocks.shape[0] * J * blocks.shape[2],
        dtype=np.result_type(tensor.dtype, matrix.dtype),
    )
    out_blocks = out_flat.reshape((blocks.shape[0], J, blocks.shape[2]))
    mt = np.ascontiguousarray(matrix.T)  # J x In, one small copy
    for j in range(blocks.shape[0]):
        # (J x In) @ (In x ILn), both row-major: a single GEMM per block.
        np.matmul(mt, blocks[j], out=out_blocks[j])
    return DenseTensor(out_flat, new_shape)
