"""Reference implementations of "existing software" comparators.

The paper benchmarks against Matlab Tensor Toolbox's ``cp_als`` (Figure 7).
Matlab is not available offline, so :mod:`repro.reference.tensor_toolbox`
re-implements, faithfully, what Tensor Toolbox computes for dense tensors:
MTTKRP via explicit permute+reshape matricization plus an explicit full KRP
and a single GEMM, with parallelism only inside BLAS — the computational
profile that the paper's speedups are measured against.
"""

from repro.reference.tensor_toolbox import cp_als_ttb, mttkrp_ttb

__all__ = ["mttkrp_ttb", "cp_als_ttb"]
