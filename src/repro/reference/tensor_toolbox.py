"""Tensor-Toolbox-style dense CP-ALS: the paper's software comparator.

Matlab Tensor Toolbox (Bader & Kolda) computes dense MTTKRP the
straightforward way (Section 2.3 of the paper):

1. ``tenmat(X, n)`` — permute and reshape the tensor into an explicit
   ``I_n x I_{!=n}`` matricization (reordering every entry in memory);
2. ``khatrirao(U, -n, 'r')`` — form the full Khatri-Rao product explicitly
   (column-wise, without the reuse optimization of Algorithm 1);
3. one matrix multiplication.

Its only parallelism is whatever the BLAS inside Matlab provides, which is
exactly how the paper characterizes the Matlab packages ("the only
opportunity for parallelization in the packages is within BLAS calls").

This module reproduces that computational profile in Python/numpy so the
Figure 7 comparison can be regenerated: :func:`mttkrp_ttb` mirrors
``mttkrp(tensor, U, n)`` and :func:`cp_als_ttb` mirrors ``cp_als`` (same
update order, normalization, and fit logic as Tensor Toolbox 2.6).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.parallel.blas import blas_threads
from repro.parallel.config import resolve_threads
from repro.tensor.dense import DenseTensor
from repro.tensor.matricize import unfold_explicit
from repro.util.timing import NULL_TIMER, PhaseTimer, wall_time
from repro.util.validation import check_factor_matrices, check_mode

__all__ = ["khatrirao_ttb", "mttkrp_ttb", "cp_als_ttb", "TTBResult"]


def khatrirao_ttb(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Tensor Toolbox's ``khatrirao``: column-wise, no row-wise reuse.

    TTB computes the KRP column by column via repeated reshaped outer
    products (``bsxfun``-style broadcasting).  Arithmetic cost matches the
    naive row-wise schedule: each pairwise expansion recomputes full-height
    products, i.e. ``Z-1`` passes over the output height.
    """
    mats = [np.asarray(m) for m in matrices]
    C = mats[0].shape[1]
    for m in mats:
        if m.ndim != 2 or m.shape[1] != C:
            raise ValueError("all matrices must be 2-D with equal columns")
    K = mats[0]
    for m in mats[1:]:
        # TTB expands pairwise left-to-right; unlike Algorithm 1 it
        # allocates and fills a fresh full-size buffer per pair.
        K = (K[:, None, :] * m[None, :, :]).reshape(-1, C)
    return K


def mttkrp_ttb(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    n: int,
    num_threads: int | None = None,
    timers: PhaseTimer | None = None,
) -> np.ndarray:
    """Dense MTTKRP the Tensor Toolbox way: reorder + full KRP + GEMM.

    Phases (for breakdown reporting): ``"reorder"``, ``"full_krp"``,
    ``"gemm"``.  ``num_threads`` caps the BLAS threads, the only
    parallelism this implementation has.
    """
    if not isinstance(tensor, DenseTensor):
        raise TypeError(
            f"tensor must be a DenseTensor, got {type(tensor).__name__}"
        )
    n = check_mode(n, tensor.ndim)
    check_factor_matrices(list(factors), tensor.shape)
    T = resolve_threads(num_threads)
    t = timers if timers is not None else NULL_TIMER
    with t.phase("reorder"):
        Xn = unfold_explicit(tensor, n, order="F")
    with t.phase("full_krp"):
        # KRP of all factors but n, highest mode first (TTB's convention for
        # its 0-indexed equivalent; matches the matricization column order).
        K = khatrirao_ttb(
            [np.asarray(factors[k]) for k in range(tensor.ndim - 1, -1, -1) if k != n]
        )
    with blas_threads(T), t.phase("gemm"):
        return Xn @ K


@dataclass
class TTBResult:
    """Outcome of :func:`cp_als_ttb` (mirrors CPALSResult's fields)."""

    factors: list[np.ndarray]
    weights: np.ndarray
    fits: list[float] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False
    iteration_times: list[float] = field(default_factory=list)
    timers: PhaseTimer = field(default_factory=PhaseTimer)

    @property
    def final_fit(self) -> float:
        if not self.fits:
            raise ValueError("no iterations were run")
        return self.fits[-1]

    @property
    def mean_iteration_time(self) -> float:
        times = self.iteration_times
        if not times:
            raise ValueError("no iterations were run")
        if len(times) > 2:
            times = times[1:]
        return float(np.mean(times))


def cp_als_ttb(
    tensor: DenseTensor,
    rank: int,
    n_iter_max: int = 50,
    tol: float = 1e-4,
    init: str | Sequence[np.ndarray] = "random",
    num_threads: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> TTBResult:
    """``cp_als`` as Tensor Toolbox 2.6 computes it.

    Same ALS mathematics as :func:`repro.cpd.cp_als` but with the
    straightforward MTTKRP (and TTB's default ``tol=1e-4``), so that
    per-iteration time comparisons isolate the MTTKRP algorithms — the
    quantity Figure 7 reports.
    """
    rank = int(rank)
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    N = tensor.ndim
    rng = np.random.default_rng(rng)
    if isinstance(init, str):
        if init != "random":
            raise ValueError("TTB reference supports only random init")
        factors = [rng.random((s, rank)) for s in tensor.shape]
    else:
        factors = [np.array(f, dtype=np.float64, copy=True) for f in init]
        if len(factors) != N:
            raise ValueError(f"expected {N} initial factors, got {len(factors)}")

    norm_x = tensor.norm()
    if norm_x == 0.0:
        raise ValueError("cannot decompose a zero tensor")
    weights = np.ones(rank)
    grams = [f.T @ f for f in factors]
    timers = PhaseTimer()
    result = TTBResult(factors=factors, weights=weights, timers=timers)
    previous_fit = -np.inf

    for it in range(n_iter_max):
        t0 = wall_time()
        M = None
        for n in range(N):
            M = mttkrp_ttb(
                tensor, factors, n, num_threads=num_threads, timers=timers
            )
            H = np.ones((rank, rank))
            for k in range(N):
                if k != n:
                    H *= grams[k]
            with timers.phase("solve"):
                try:
                    factors[n] = np.linalg.solve(H, M.T).T
                except np.linalg.LinAlgError:
                    factors[n] = M @ np.linalg.pinv(H)
                if it == 0:
                    weights = np.linalg.norm(factors[n], axis=0)
                else:
                    weights = np.maximum(np.abs(factors[n]).max(axis=0), 1.0)
                weights = np.where(weights > 0, weights, 1.0)
                factors[n] /= weights
            grams[n] = factors[n].T @ factors[n]
        result.iteration_times.append(wall_time() - t0)

        assert M is not None
        inner = float(np.einsum("ic,ic,c->", M, factors[N - 1], weights))
        H_all = np.ones((rank, rank))
        for g in grams:
            H_all *= g
        norm_y_sq = float(weights @ H_all @ weights)
        residual_sq = max(norm_x**2 - 2.0 * inner + norm_y_sq, 0.0)
        fit = 1.0 - np.sqrt(residual_sq) / norm_x
        result.fits.append(fit)
        result.iterations = it + 1
        if tol > 0 and abs(fit - previous_fit) < tol:
            result.converged = True
            break
        previous_fit = fit

    result.factors = factors
    result.weights = weights
    return result
