"""repro — shared-memory parallel MTTKRP for dense tensors.

A from-scratch Python reproduction of

    Hayashi, Ballard, Jiang, Tobia,
    "Shared-Memory Parallelization of MTTKRP for Dense Tensors",
    PPoPP 2018 (arXiv:1708.08976).

Public surface
--------------
Tensors and factor matrices:
    :class:`~repro.tensor.DenseTensor`, :func:`~repro.tensor.random_tensor`,
    :func:`~repro.tensor.from_kruskal`, :func:`~repro.tensor.ttv`,
    :func:`~repro.tensor.ttm`.

Khatri-Rao products (Algorithm 1):
    :func:`~repro.core.khatri_rao`, :func:`~repro.core.khatri_rao_parallel`,
    :func:`~repro.core.khatri_rao_naive`.

MTTKRP (Algorithms 2-4 and baselines):
    :func:`~repro.core.mttkrp` (dispatching entry point),
    :func:`~repro.core.mttkrp_onestep`, :func:`~repro.core.mttkrp_twostep`,
    :func:`~repro.core.mttkrp_baseline`.

CP decomposition:
    :func:`~repro.cpd.cp_als`, :class:`~repro.cpd.KruskalTensor`.

Thread control:
    :func:`~repro.parallel.set_num_threads`,
    :func:`~repro.parallel.num_threads` (context manager).

Execution backend (``"thread"`` default, ``"process"`` for GIL-free
Python loops over shared memory — bit-identical results):
    :func:`~repro.parallel.set_backend`,
    :func:`~repro.parallel.use_backend` (context manager).

Quickstart
----------
>>> import numpy as np
>>> from repro import random_tensor, random_factors, mttkrp
>>> X = random_tensor((30, 40, 50), rng=0)
>>> U = random_factors(X.shape, rank=8, rng=1)
>>> M = mttkrp(X, U, n=1)        # 40 x 8, via the paper's 2-step algorithm
>>> M.shape
(40, 8)
"""

from repro.core import (
    khatri_rao,
    khatri_rao_naive,
    khatri_rao_parallel,
    mttkrp,
    mttkrp_baseline,
    mttkrp_onestep,
    mttkrp_twostep,
)
from repro.cpd import KruskalTensor, TuckerTensor, cp_als, cp_nnhals, hosvd
from repro.parallel import (
    get_backend,
    get_num_threads,
    num_threads,
    set_backend,
    set_num_threads,
    use_backend,
)
from repro.tensor import (
    DenseTensor,
    from_kruskal,
    multi_ttv,
    random_tensor,
    ttm,
    ttv,
)
from repro.tensor.generate import random_factors

__version__ = "1.0.0"

__all__ = [
    "DenseTensor",
    "random_tensor",
    "random_factors",
    "from_kruskal",
    "ttv",
    "multi_ttv",
    "ttm",
    "khatri_rao",
    "khatri_rao_naive",
    "khatri_rao_parallel",
    "mttkrp",
    "mttkrp_onestep",
    "mttkrp_twostep",
    "mttkrp_baseline",
    "cp_als",
    "cp_nnhals",
    "hosvd",
    "KruskalTensor",
    "TuckerTensor",
    "set_num_threads",
    "get_num_threads",
    "num_threads",
    "set_backend",
    "get_backend",
    "use_backend",
    "__version__",
]
