"""Coalescing scheduler: when do queued jobs share one fleet invocation?

The batched engine (:mod:`repro.batch`) turns ``B`` same-shape
decompositions into stacked GEMMs at 4-6x the per-item dispatch loop's
throughput — but only below the stacked-vs-loop crossover that PR 9's
:func:`repro.tune.batched.autotune_batched` measures and caches.  This
module owns the two policy questions the serving loop asks:

* :func:`group_key` — *may* this job be coalesced at all, and with
  whom?  Jobs group only when a fleet run is semantically equivalent to
  their solo runs: same shape, rank, dtype, iteration budget,
  tolerance, thread/backend placement, and default (seeded-random)
  initialization.  Oversized items, ``trace=True`` jobs (their spans
  would interleave), file-ref payloads (the parent never sees the
  tensor), and ``batchable=False`` jobs stay solo.
* :func:`batching_pays` — is the stacked lane actually faster for this
  key at this group size?  The answer is a *lookup* into the shared
  :class:`~repro.tune.cache.TuningCache` under the same ``TuneKey``
  vocabulary the batched autotuner writes (mode 0, ``batch`` clamped to
  the tuner's proxy limit): a fleet-wide warm decision costs ~13 us
  here.  With no cached record the scheduler stays optimistic for small
  items — exactly the regime PR 9's committed baselines cover — and
  the decision is never *measured* on the serving path.

Coalesced members inherit the group head's scheduling slot: a
lower-priority same-key job can run earlier than strict priority order
would have it (never later, and never delaying a different-key job
behind it by more than the marginal stacked cost).  That is the
documented throughput-for-strictness trade; disable it per job
(``batchable=False``) or per server (``ServeConfig.batching=False``).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.util import prod

__all__ = ["GroupKey", "group_key", "batching_pays"]

#: The batched autotuner measures on at most this many items
#: (:data:`repro.tune.batched._PROXY_BATCH_LIMIT`); cache lookups clamp
#: the group size the same way so serve-time keys hit tuner-time records.
_PROXY_BATCH_LIMIT = 64


class GroupKey(NamedTuple):
    """Identity of a coalescible job class (hashable, order-insensitive)."""

    shape: tuple[int, ...]
    rank: int
    dtype: str
    n_iter_max: int
    tol: float
    num_threads: int | None
    backend: str | None


def group_key(job, *, max_item_elems: int) -> GroupKey | None:
    """The job's coalescing class, or ``None`` if it must run solo.

    ``job`` is the server-internal record (``job.spec`` is the
    normalized :class:`~repro.serve.job.JobSpec`, ``job.tensor`` the
    admitted :class:`~repro.tensor.dense.DenseTensor`).
    """
    spec = job.spec
    if spec.batchable is False or spec.trace or job.tensor is None:
        return None
    if spec.timeout is not None:
        # Deadlines are per-job; a fleet run advances in lock-step, so
        # one member's deadline would either be ignored or kill the
        # whole group.  Deadline jobs run solo.
        return None
    if spec.method not in ("auto",):
        # Solo method specs ("onestep", per-mode lists, ...) have no
        # batched counterpart; the fleet engine picks its own lanes.
        return None
    shape = job.tensor.shape
    if spec.batchable is not True and prod(shape) > max_item_elems:
        return None
    return GroupKey(
        shape=tuple(shape),
        rank=int(spec.rank),
        dtype=str(job.tensor.data.dtype),
        n_iter_max=int(spec.n_iter_max),
        tol=float(spec.tol),
        num_threads=spec.num_threads,
        backend=spec.backend,
    )


def batching_pays(key: GroupKey, group_size: int) -> bool:
    """Whether the stacked lane wins for ``group_size`` jobs of ``key``.

    Pure cache lookup (see module docstring): a cached ``batched-loop``
    decision vetoes coalescing — the per-item loop inside one fleet call
    would still amortize *queue* overhead, but the measured crossover
    says the items are large enough that solo scheduling loses nothing,
    and solo preserves strict priority order.  No record -> optimistic.
    """
    if group_size < 2:
        return False
    from repro.parallel.config import resolve_backend, resolve_threads
    from repro.tune.cache import TuneKey, get_cache

    tune_key = TuneKey.make(
        key.shape,
        key.rank,
        0,
        resolve_threads(key.num_threads),
        resolve_backend(key.backend),
        key.dtype,
        batch=min(int(group_size), _PROXY_BATCH_LIMIT),
    )
    record = get_cache().get(tune_key)
    if record is None:
        return True
    return record.method == "batched"
