"""Bounded priority queue with O(1) cancellation and key-based group pops.

The admission queue between :meth:`JobServer.submit` and the worker
tenders.  Three properties the stdlib queues do not give us together:

* **priority + FIFO** — entries pop highest ``priority`` first and in
  submission order within a priority level (a monotonic sequence number
  breaks ties, so equal-priority jobs can never reorder);
* **cancellation of queued entries** — ``cancel(job_id)`` marks the
  heap entry dead in O(1) (lazy deletion: the heap skips dead entries
  on pop) and immediately frees its slot against the depth bound;
* **group pops for the coalescing scheduler** — ``pop(group_key=...)``
  pops the head and then *also* claims up to ``group_limit - 1`` live
  entries sharing the head's group key, in priority order, via a
  per-key index.  Claimed members inherit the head's scheduling slot —
  that is the documented batching trade (see ``docs/serving.md``).

The depth bound counts **live** entries only; backpressure is the
caller's contract (``put`` raises :class:`QueueFullError`), so the
queue can never grow without bound.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import defaultdict

from repro.serve.job import QueueFullError

__all__ = ["PriorityJobQueue"]


class _Entry:
    __slots__ = ("job_id", "order", "item", "key", "live")

    def __init__(self, job_id: str, order: tuple, item, key) -> None:
        self.job_id = job_id
        self.order = order  # (-priority, seq): heap pops smallest
        self.item = item
        self.key = key
        self.live = True

    def __lt__(self, other: "_Entry") -> bool:
        return self.order < other.order


class PriorityJobQueue:
    """See module docstring.  Items are opaque; ids/keys are caller-supplied."""

    def __init__(self, depth: int) -> None:
        depth = int(depth)
        if depth <= 0:
            raise ValueError(f"queue depth must be positive, got {depth}")
        self.depth = depth
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._heap: list[_Entry] = []
        self._by_id: dict[str, _Entry] = {}
        self._by_key: dict[object, list[_Entry]] = defaultdict(list)
        self._live = 0
        self._seq = itertools.count()
        self._closed = False

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        with self._lock:
            return self._live

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, job_id: str, item, priority: int = 0, key=None) -> None:
        """Enqueue; raises :class:`QueueFullError` at the depth bound."""
        with self._lock:
            if self._closed:
                raise RuntimeError("queue is closed")
            if self._live >= self.depth:
                raise QueueFullError(self.depth)
            entry = _Entry(job_id, (-int(priority), next(self._seq)), item, key)
            self._heap_push(entry)
            self._by_id[job_id] = entry
            if key is not None:
                self._by_key[key].append(entry)
            self._live += 1
            self._not_empty.notify()

    def _heap_push(self, entry: _Entry) -> None:
        heapq.heappush(self._heap, entry)

    def cancel(self, job_id: str):
        """Drop a queued entry; returns its item, or ``None`` if absent.

        O(1): the entry is only *marked* dead — the heap and key index
        skip dead entries lazily — but its depth slot frees immediately.
        """
        with self._lock:
            entry = self._by_id.pop(job_id, None)
            if entry is None or not entry.live:
                return None
            entry.live = False
            self._live -= 1
            return entry.item

    def pop(
        self,
        timeout: float | None = None,
        *,
        group_key=None,
        group_limit: int = 1,
    ):
        """Pop the highest-priority live item (plus its group, if asked).

        Returns a list of items — ``[head]`` for a plain pop, up to
        ``group_limit`` same-key items when ``group_key`` is a callable
        ``item -> key | None`` and the head's key is not ``None``.
        Returns ``None`` on timeout, or when the queue is closed and
        empty (the tender's exit signal).
        """
        with self._not_empty:
            while True:
                head = self._pop_live_locked()
                if head is not None:
                    break
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None
        items = [head.item]
        if group_key is not None and group_limit > 1:
            key = group_key(head.item)
            if key is not None:
                items.extend(self._claim_group(key, group_limit - 1))
        return items

    def _pop_live_locked(self):
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.live:
                entry.live = False
                self._live -= 1
                self._forget(entry)
                return entry
        return None

    def _forget(self, entry: _Entry) -> None:
        if self._by_id.get(entry.job_id) is entry:
            del self._by_id[entry.job_id]

    def _claim_group(self, key, limit: int) -> list:
        """Claim up to ``limit`` live same-key entries, in priority order."""
        with self._lock:
            entries = [e for e in self._by_key.get(key, ()) if e.live]
            entries.sort()
            claimed = entries[:limit]
            for entry in claimed:
                entry.live = False
                self._live -= 1
                self._forget(entry)
            if not any(e.live for e in self._by_key.get(key, ())):
                self._by_key.pop(key, None)
            return [e.item for e in claimed]

    # ------------------------------------------------------------------ #

    def close(self) -> list:
        """Stop accepting; wake poppers; return the still-queued items.

        The caller decides their fate: a draining shutdown re-queues
        nothing (tenders already consumed everything before close), a
        fast shutdown finalizes them as cancelled.
        """
        with self._lock:
            self._closed = True
            remaining = []
            while True:
                entry = self._pop_live_locked()
                if entry is None:
                    break
                remaining.append(entry.item)
            self._not_empty.notify_all()
            return remaining

    def wait_empty(self, timeout: float | None = None) -> bool:
        """Block until no live entries remain (polling; test helper)."""
        import time

        end = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                if self._live == 0:
                    return True
            if end is not None and time.monotonic() >= end:
                return False
            time.sleep(0.005)
