"""Service worker processes: run decompositions, stream progress, survive.

One :class:`WorkerHandle` per pool slot.  The child process
(:func:`serve_worker_main`) is deliberately simple — a message loop that
runs **one job at a time** on a private thread while the loop itself
keeps polling the pipe, so cancellation messages land mid-run and are
delivered to the job through its :class:`~repro.util.cancel.CancelToken`
(checked by the drivers at iteration boundaries).

Robustness contract (the fault-injection suite pins this):

* a worker process dying mid-job — SIGKILL, OOM, segfault — is detected
  by the parent tender through the pipe + liveness probe
  (:meth:`WorkerHandle.recv`), fails **only the job(s) it was running**
  with a :class:`~repro.parallel.pool.WorkerError` whose ``__cause__``
  records the death, and the handle respawns a fresh process
  (:meth:`WorkerHandle.respawn`) so the pool keeps serving;
* a Python exception *inside* a job (singular solve, bad ref file) is
  caught in the worker, shipped back pickled, and fails only that job —
  the process survives and takes the next one.

Workers are **not** daemonic: a job is allowed to use the process
backend, and :class:`multiprocessing` forbids daemonic processes from
having children.  The server guarantees teardown instead (shutdown
protocol + terminate/kill escalation + atexit sweep).
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import traceback
from contextlib import nullcontext

import numpy as np

from repro.parallel.pool import WorkerError

__all__ = ["WorkerHandle", "WorkerDied", "serve_worker_main"]

_clock = time.monotonic


class WorkerDied(RuntimeError):
    """Parent-side signal: the worker process is gone (raised by recv)."""

    def __init__(self, rank: int, detail: str) -> None:
        super().__init__(f"serve worker {rank} died: {detail}")
        self.rank = rank
        self.detail = detail

    def as_worker_error(self) -> WorkerError:
        """The job-facing error: ``WorkerError`` chained to the death."""
        cause = RuntimeError(str(self))
        err = WorkerError(self.rank, cause)
        err.__cause__ = cause  # chained like a raised `raise ... from`
        return err


# --------------------------------------------------------------------- #
# Child process
# --------------------------------------------------------------------- #


def _execute_payload(payload: dict, token) -> object:
    """Run one job payload; returns the reply message tuple."""
    import repro.obs as obs
    from repro.util.cancel import Cancelled

    job_id = payload["job_id"]
    trace = bool(payload.get("trace"))
    capture_ctx = obs.capture() if trace else nullcontext()
    try:
        with capture_ctx as tracer:
            if payload["kind"] == "solo":
                results = [_run_solo(payload, token)]
            else:
                results = _run_group(payload, token)
        if trace and tracer is not None:
            results[0]["trace"] = obs.chrome_trace(tracer)
            results[0]["counters"] = obs.counters_snapshot(tracer)
    except Cancelled as exc:
        return ("cancelled", job_id, exc.reason)
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        tb_text = traceback.format_exc()
        try:
            exc_bytes = pickle.dumps(exc)
        except Exception:
            exc_bytes = None
        return ("failed", job_id, exc_bytes, repr(exc), tb_text)
    if payload["kind"] == "solo":
        return ("done", job_id, results[0])
    return ("done-group", job_id, results)


def _load_tensor(payload: dict):
    from repro.tensor.dense import DenseTensor

    if payload.get("ref") is not None:
        from repro.io import load_tensor

        return load_tensor(payload["ref"])
    return DenseTensor(payload["data"], payload["shape"])


def _run_solo(payload: dict, token) -> dict:
    from repro.cpd.cp_als import cp_als

    tensor = _load_tensor(payload)
    res = cp_als(
        tensor,
        payload["rank"],
        n_iter_max=payload["n_iter_max"],
        tol=payload["tol"],
        method=payload["method"],
        num_threads=payload["num_threads"],
        backend=payload["backend"],
        rng=payload["seed"],
        cancel=token,
    )
    model = res.model
    return {
        "weights": np.asarray(model.weights),
        "factors": [np.asarray(f) for f in model.factors],
        "fit": float(res.final_fit),
        "iterations": int(res.iterations),
        "converged": bool(res.converged),
        "counters": {},
        "trace": None,
    }


def _run_group(payload: dict, token) -> list[dict]:
    from repro.batch.fleet import cp_als_fleet
    from repro.tensor.dense import DenseTensor

    shape = payload["shape"]
    tensors = [DenseTensor(d, shape) for d in payload["datas"]]
    res = cp_als_fleet(
        tensors,
        payload["rank"],
        seeds=payload["seeds"],
        n_iter_max=payload["n_iter_max"],
        tol=payload["tol"],
        num_threads=payload["num_threads"],
        backend=payload["backend"],
        cancel=token,
    )
    results = []
    for b in range(len(tensors)):
        model = res.model(b)
        results.append({
            "weights": np.asarray(model.weights),
            "factors": [np.asarray(f) for f in model.factors],
            "fit": float(res.fits[b]),
            "iterations": int(res.iterations[b]),
            "converged": bool(res.converged[b]),
            "counters": {},
            "trace": None,
        })
    return results


def serve_worker_main(rank: int, conn) -> None:
    """Child-process entry: message loop around a one-job-at-a-time thread."""
    from repro.parallel.backend import reset_worker_runtime_state
    from repro.util.cancel import CancelToken

    # Service workers are intermediate processes: they run whole
    # decompositions and may spawn their own executor teams, so the
    # thread counts stay at the package defaults (a job's result must
    # match a direct in-parent call bit-for-bit).
    reset_worker_runtime_state(
        num_threads=None, blas_threads=None, leaf_worker=False
    )
    send_lock = threading.Lock()

    def send(msg) -> None:
        payload = pickle.dumps(msg)
        with send_lock:
            conn.send_bytes(payload)

    stop = False
    while not stop:
        try:
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            break
        msg = pickle.loads(raw)
        if msg[0] == "stop":
            break
        if msg[0] != "job":  # stale cancel for a finished job
            continue
        payload = msg[1]
        job_id = payload["job_id"]
        remaining = payload.get("timeout_remaining")
        token = CancelToken(
            deadline=None if remaining is None else _clock() + remaining
        )
        every = int(payload.get("progress_every") or 0)
        if every > 0:
            def on_progress(it, fit, job_id=job_id, every=every):
                if it % every == 0:
                    send(("progress", job_id, int(it), float(fit)))

            token.on_progress = on_progress

        reply_box: list = []

        def run(payload=payload, token=token, box=reply_box) -> None:
            box.append(_execute_payload(payload, token))

        thread = threading.Thread(
            target=run, name=f"repro-serve-job-{job_id}", daemon=True
        )
        thread.start()
        # Pump the pipe while the job runs so cancellation lands mid-run.
        while thread.is_alive():
            if conn.poll(0.02):
                try:
                    ctl = pickle.loads(conn.recv_bytes())
                except (EOFError, OSError):
                    ctl = ("stop",)
                if ctl[0] == "stop":
                    token.cancel("server shutdown")
                    stop = True
                elif ctl[0] == "cancel" and ctl[1] == job_id:
                    token.cancel(ctl[2] if len(ctl) > 2 else "cancelled")
        thread.join()
        if reply_box:
            try:
                send(reply_box[0])
            except (OSError, ValueError):  # parent went away
                break


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #


class WorkerHandle:
    """Parent-side handle: spawn / message / detect death / respawn."""

    def __init__(self, rank: int, ctx) -> None:
        self.rank = rank
        self._ctx = ctx
        self._proc = None
        self._conn = None
        self.respawns = 0
        # Dispatch (tender thread) and cancellation (client thread) both
        # send; a Connection tolerates one concurrent sender only.
        self._send_lock = threading.Lock()
        self.spawn()

    # -- lifecycle ------------------------------------------------------ #

    def spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=serve_worker_main,
            args=(self.rank, child_conn),
            name=f"repro-serve-worker-{self.rank}",
            daemon=False,  # jobs may spawn process-backend teams
        )
        proc.start()
        child_conn.close()
        self._proc = proc
        self._conn = parent_conn

    def respawn(self) -> None:
        """Replace a dead (or wedged) process with a fresh one."""
        self._teardown(graceful=False)
        self.respawns += 1
        self.spawn()

    def stop(self, timeout: float = 2.0) -> None:
        self._teardown(graceful=True, timeout=timeout)

    def _teardown(self, graceful: bool, timeout: float = 2.0) -> None:
        proc, conn = self._proc, self._conn
        self._proc = self._conn = None
        if conn is not None and graceful and proc is not None and proc.is_alive():
            try:
                conn.send_bytes(pickle.dumps(("stop",)))
            except (OSError, ValueError):
                pass
        if proc is not None:
            proc.join(timeout if graceful else 0.1)
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
            if proc.is_alive():  # pragma: no cover - stuck in C code
                proc.kill()
                proc.join(1.0)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    # -- messaging ------------------------------------------------------ #

    @property
    def pid(self) -> int | None:
        return self._proc.pid if self._proc is not None else None

    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    def send(self, msg) -> None:
        """Ship a message; raises :class:`WorkerDied` on a broken pipe."""
        conn = self._conn
        if conn is None:
            raise WorkerDied(self.rank, "no process")
        try:
            with self._send_lock:
                conn.send_bytes(pickle.dumps(msg))
        except (OSError, ValueError) as exc:
            raise WorkerDied(self.rank, f"pipe send failed ({exc!r})") from None

    def recv(self, timeout: float = 0.05):
        """One message, or ``None`` on timeout; :class:`WorkerDied` on death.

        Mirrors :meth:`ProcessExecutor._recv`: after the process exits, a
        final drain attempt still returns a reply that raced the death.
        """
        conn, proc = self._conn, self._proc
        if conn is None or proc is None:
            raise WorkerDied(self.rank, "no process")
        if not conn.poll(timeout):
            if proc.is_alive():
                return None
            if not conn.poll(0):
                raise WorkerDied(
                    self.rank, f"exitcode={proc.exitcode}"
                )
        try:
            return pickle.loads(conn.recv_bytes())
        except (EOFError, OSError, ConnectionError) as exc:
            raise WorkerDied(
                self.rank,
                f"channel closed mid-job ({exc!r}, exitcode={proc.exitcode})",
            ) from None

    def kill(self) -> None:
        """Hard-kill the process (fault-injection hook; SIGKILL)."""
        if self._proc is not None and self._proc.pid is not None:
            try:
                os.kill(self._proc.pid, 9)
            except ProcessLookupError:  # pragma: no cover - already gone
                pass
