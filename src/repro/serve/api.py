"""Async facade and wire protocol for :class:`~repro.serve.server.JobServer`.

Two layers, both thin by design — all policy lives in the sync core:

* :class:`AsyncJobServer` — an asyncio-native wrapper for in-process
  use: ``await`` on submission, status, results.  Blocking waits run on
  the event loop's default executor, so thousands of pending
  ``result()`` awaits cost threads only while jobs actually finish.
* :func:`serve_unix` / :func:`request` — a newline-delimited-JSON
  protocol over a unix domain socket, one request object per line, one
  response object per line.  This is what the ``repro-serve`` CLI
  speaks.  Tensors cross the socket as nested lists (small payloads) or
  as ``repro.io`` file refs (the recommended path for anything big).

Wire ops: ``ping``, ``submit``, ``status``, ``result``, ``cancel``,
``stats``, ``shutdown``.  Every response carries ``"ok"``; failures
carry the exception type name in ``"error"`` so clients can re-raise
typed admission errors.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from repro.serve.job import JobSpec
from repro.serve.server import JobServer, ServeConfig

__all__ = ["AsyncJobServer", "serve_unix", "request"]


class AsyncJobServer:
    """Asyncio-native view of a (possibly shared) :class:`JobServer`."""

    def __init__(self, server: JobServer | None = None,
                 config: ServeConfig | None = None, **overrides) -> None:
        self.server = server if server is not None else JobServer(
            config, **overrides
        )

    async def _run(self, fn, *args, **kwargs):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: fn(*args, **kwargs)
        )

    async def submit(self, spec: JobSpec | None = None, /, **kwargs):
        """Admission runs off-loop (it may copy/validate a whole tensor)."""
        return await self._run(self.server.submit, spec, **kwargs)

    async def result(self, job_id: str, timeout: float | None = None):
        return await self._run(self.server.result, job_id, timeout=timeout)

    async def wait(self, job_id: str, timeout: float | None = None) -> bool:
        return await self._run(self.server.wait, job_id, timeout=timeout)

    def status(self, job_id: str):
        return self.server.status(job_id)  # non-blocking snapshot

    def cancel(self, job_id: str, reason: str = "cancelled") -> bool:
        return self.server.cancel(job_id, reason=reason)

    def stats(self) -> dict:
        return self.server.stats()

    async def shutdown(self, drain: bool = True,
                       timeout: float | None = 30.0) -> None:
        await self._run(self.server.shutdown, drain=drain, timeout=timeout)

    async def __aenter__(self) -> "AsyncJobServer":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.shutdown(drain=exc == (None, None, None))


# --------------------------------------------------------------------- #
# Wire protocol
# --------------------------------------------------------------------- #

_SPEC_FIELDS = (
    "rank", "tensor_ref", "n_iter_max", "tol", "method", "num_threads",
    "backend", "seed", "priority", "timeout", "arena_bytes", "batchable",
    "trace",
)


def _spec_from_wire(obj: dict) -> JobSpec:
    kwargs = {k: obj[k] for k in _SPEC_FIELDS if k in obj}
    if obj.get("tensor") is not None:
        dtype = obj.get("dtype", "float64")
        kwargs["tensor"] = np.asarray(obj["tensor"], dtype=dtype)
    return JobSpec(**kwargs)


def _result_to_wire(result) -> dict:
    return {
        "job_id": result.job_id,
        "weights": np.asarray(result.weights).tolist(),
        "factors": [np.asarray(f).tolist() for f in result.factors],
        "fit": result.fit,
        "iterations": result.iterations,
        "converged": result.converged,
        "batched": result.batched,
        "group_size": result.group_size,
        "wait_seconds": result.wait_seconds,
        "run_seconds": result.run_seconds,
        "counters": result.counters,
    }


async def _handle_request(facade: AsyncJobServer, obj: dict) -> dict:
    op = obj.get("op")
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "submit":
        handle = await facade.submit(_spec_from_wire(obj.get("spec") or {}))
        return {"ok": True, "job_id": handle.job_id}
    if op == "status":
        return {"ok": True,
                "status": facade.status(obj["job_id"]).as_dict()}
    if op == "result":
        result = await facade.result(
            obj["job_id"], timeout=obj.get("timeout")
        )
        return {"ok": True, "result": _result_to_wire(result)}
    if op == "cancel":
        ok = facade.cancel(obj["job_id"],
                           reason=obj.get("reason", "cancelled"))
        return {"ok": True, "cancelled": ok}
    if op == "stats":
        return {"ok": True, "stats": facade.stats()}
    if op == "shutdown":
        return {"ok": True, "shutdown": True}  # handled by the caller
    return {"ok": False, "error": "ValueError",
            "message": f"unknown op {op!r}"}


async def serve_unix(server: JobServer, path: str,
                     ready: "asyncio.Event | None" = None) -> None:
    """Serve the JSON-lines protocol on a unix socket until ``shutdown``.

    One coroutine per connection; requests on one connection are handled
    sequentially (submit from many connections for concurrency).  The
    ``shutdown`` op drains the server and stops accepting.
    """
    facade = AsyncJobServer(server)
    done = asyncio.Event()
    shutdown_opts: dict = {}

    async def on_connect(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as exc:
                    reply = {"ok": False, "error": "JSONDecodeError",
                             "message": str(exc)}
                else:
                    try:
                        reply = await _handle_request(facade, obj)
                    except Exception as exc:  # typed errors cross as names
                        reply = {
                            "ok": False,
                            "error": type(exc).__name__,
                            "message": str(exc),
                        }
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()
                if reply.get("shutdown"):
                    shutdown_opts["drain"] = bool(obj.get("drain", True))
                    done.set()
                    break
        finally:
            writer.close()

    sock_server = await asyncio.start_unix_server(on_connect, path=path)
    if ready is not None:
        ready.set()
    try:
        await done.wait()
    finally:
        sock_server.close()
        await sock_server.wait_closed()
        await facade.shutdown(drain=shutdown_opts.get("drain", True))


def request(path: str, obj: dict, timeout: float | None = 60.0) -> dict:
    """One synchronous round-trip against :func:`serve_unix` (CLI client)."""
    import socket

    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(path)
        sock.sendall(json.dumps(obj).encode() + b"\n")
        chunks = []
        while True:
            data = sock.recv(1 << 16)
            if not data:
                break
            chunks.append(data)
            if data.endswith(b"\n"):
                break
    raw = b"".join(chunks)
    if not raw:
        raise ConnectionError(f"no reply from {path}")
    return json.loads(raw)
