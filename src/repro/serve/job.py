"""Job vocabulary for the decomposition service: specs, states, results.

Everything a client hands the server is a :class:`JobSpec` (an inline
tensor *or* a ``repro.io`` file ref, a rank, solver options, scheduling
hints); everything the server hands back is a :class:`JobStatus`
snapshot while the job is in flight and a :class:`JobResult` once it is
terminal.  The typed error hierarchy is the admission-control contract:
a malformed or over-budget submission raises a subclass of
:class:`AdmissionError` *at submit time* — it never enters the queue and
can never crash the serving loop — while backpressure sheds load with
:class:`QueueFullError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "JobSpec",
    "JobState",
    "JobStatus",
    "JobResult",
    "ServeError",
    "AdmissionError",
    "BudgetError",
    "QueueFullError",
    "JobNotFoundError",
    "ServerClosedError",
]


class ServeError(RuntimeError):
    """Base class for service-level failures."""


class AdmissionError(ServeError, ValueError):
    """A submission rejected at admission: malformed payload or options.

    ``field`` names the offending part of the spec (``"tensor"``,
    ``"rank"``, ...) so clients can machine-route rejections.
    """

    def __init__(self, field: str, message: str) -> None:
        super().__init__(f"{field}: {message}")
        self.field = field


class BudgetError(AdmissionError):
    """A submission whose resource budget cannot be honoured.

    Carries the requested and allowed amounts so a client can resize
    and resubmit.
    """

    def __init__(self, field: str, requested, allowed, message: str) -> None:
        super().__init__(field, message)
        self.requested = requested
        self.allowed = allowed


class QueueFullError(ServeError):
    """Backpressure: the bounded queue is at depth; the job was shed."""

    def __init__(self, depth: int) -> None:
        super().__init__(
            f"queue is at its depth bound ({depth}); job shed — retry "
            f"later or raise ServeConfig.queue_depth"
        )
        self.depth = depth


class JobNotFoundError(ServeError, KeyError):
    """An id that was never issued (or was evicted from the registry)."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"unknown job id {job_id!r}")
        self.job_id = job_id


class ServerClosedError(ServeError):
    """Submission after shutdown began."""


class JobState(str, enum.Enum):
    """Lifecycle of an admitted job.

    ``QUEUED -> RUNNING -> {DONE, FAILED, CANCELLED, TIMEOUT}``; queued
    jobs may also go straight to ``CANCELLED`` (dropped before dispatch)
    or ``TIMEOUT`` (deadline passed while waiting).  Rejected
    submissions never get a state: :meth:`repro.serve.JobServer.submit`
    raises instead.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.DONE, JobState.FAILED, JobState.CANCELLED,
            JobState.TIMEOUT,
        )


@dataclass(frozen=True)
class JobSpec:
    """One decomposition request.

    Parameters
    ----------
    rank:
        CP rank.
    tensor:
        Inline payload: a natural-layout :class:`numpy.ndarray` (or a
        :class:`~repro.tensor.dense.DenseTensor`, unwrapped at submit).
        Exactly one of ``tensor`` / ``tensor_ref`` must be given.
    tensor_ref:
        Path to an ``.npz`` written by :func:`repro.io.save_tensor`; the
        *worker* loads it, so large tensors never transit the queue.
        Ref jobs always run solo (the parent cannot group what it has
        not seen).
    n_iter_max / tol / method / num_threads / backend / seed:
        Solver options, forwarded to :func:`repro.cpd.cp_als.cp_als`
        (solo) or :func:`repro.batch.fleet.cp_als_fleet` (coalesced) —
        ``seed`` becomes the ``rng`` so reruns are bit-reproducible.
    priority:
        Higher runs earlier; FIFO within a priority level.
    timeout:
        Wall-clock budget in seconds from submission, enforced while
        queued (dropped as ``TIMEOUT`` at dispatch) and while running
        (cooperative deadline at iteration boundaries).
    arena_bytes:
        Per-job memory budget validated at admission against the
        estimated working set (see :func:`repro.serve.budget.estimate_job_bytes`).
    batchable:
        ``None`` — the scheduler decides from size and the tuning
        cache's stacked-vs-loop crossover; ``False`` — force solo;
        ``True`` — always eligible for coalescing.
    trace:
        Capture a per-job :mod:`repro.obs` Chrome trace + counters in
        the worker and replay them in :attr:`JobResult.trace` /
        :attr:`JobResult.counters`.
    """

    rank: int
    tensor: object | None = None
    tensor_ref: str | None = None
    n_iter_max: int = 50
    tol: float = 1e-8
    method: str = "auto"
    num_threads: int | None = None
    backend: str | None = None
    seed: int | None = None
    priority: int = 0
    timeout: float | None = None
    arena_bytes: int | None = None
    batchable: bool | None = None
    trace: bool = False


@dataclass(frozen=True)
class JobStatus:
    """Point-in-time snapshot of one job (safe to hold across threads)."""

    job_id: str
    state: JobState
    priority: int
    submitted_at: float
    started_at: float | None
    finished_at: float | None
    error: str | None
    progress: tuple[int, float] | None  #: last (iteration, fit) streamed
    batched: bool  #: dispatched as part of a coalesced group
    group_size: int  #: 1 for solo jobs

    def as_dict(self) -> dict:
        """JSON-ready form (used by the socket protocol and CLI)."""
        return {
            "job_id": self.job_id,
            "state": self.state.value,
            "priority": self.priority,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "progress": list(self.progress) if self.progress else None,
            "batched": self.batched,
            "group_size": self.group_size,
        }


@dataclass
class JobResult:
    """Terminal output of a successful job.

    ``weights``/``factors`` are the fitted model exactly as the
    underlying API returns it (normalized, weight-sorted) — bit-identical
    to a direct :func:`~repro.cpd.cp_als.cp_als` (solo) or
    :func:`~repro.batch.fleet.cp_als_fleet` (coalesced) call with the
    same seed and options.
    """

    job_id: str
    weights: np.ndarray
    factors: list[np.ndarray]
    fit: float
    iterations: int
    converged: bool
    batched: bool = False
    group_size: int = 1
    wait_seconds: float = 0.0
    run_seconds: float = 0.0
    counters: dict = field(default_factory=dict)
    trace: dict | None = None

    @property
    def model(self):
        """The fitted :class:`~repro.cpd.kruskal.KruskalTensor`."""
        from repro.cpd.kruskal import KruskalTensor

        return KruskalTensor(self.factors, self.weights)
