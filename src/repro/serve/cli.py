"""``repro-serve`` — run and talk to a decomposition job server.

Subcommands::

    repro-serve serve --socket PATH [--workers N] [--queue-depth D]
                      [--no-batching] [--batch-limit B] [--start-method M]
    repro-serve submit --socket PATH (--ref FILE | --random I,J,K)
                       --rank R [--seed S] [--priority P] [--timeout T]
                       [--n-iter-max N] [--tol F] [--threads T]
                       [--backend B] [--wait] [--save FILE]
    repro-serve status --socket PATH JOB_ID
    repro-serve cancel --socket PATH JOB_ID [--reason TEXT]
    repro-serve stats --socket PATH
    repro-serve shutdown --socket PATH [--no-drain]

``serve`` runs in the foreground until a ``shutdown`` request arrives
(or Ctrl-C).  Everything else is a one-shot client round-trip over the
JSON-lines unix-socket protocol (:mod:`repro.serve.api`).  ``submit``
ships either a ``repro.io`` file ref (recommended — the worker loads
it, nothing big crosses the socket) or a small seeded random tensor for
smoke tests.  Also reachable as ``python -m repro.serve``.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Async multi-tenant CP-ALS decomposition service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_socket(p: argparse.ArgumentParser) -> None:
        p.add_argument("--socket", required=True,
                       help="unix socket path the server listens on")

    p_serve = sub.add_parser("serve", help="run a job server (foreground)")
    add_socket(p_serve)
    p_serve.add_argument("--workers", type=int, default=2)
    p_serve.add_argument("--queue-depth", type=int, default=64)
    p_serve.add_argument("--no-batching", action="store_true",
                         help="disable the coalescing scheduler")
    p_serve.add_argument("--batch-limit", type=int, default=16)
    p_serve.add_argument("--start-method", default=None,
                         help="multiprocessing start method for workers")

    p_submit = sub.add_parser("submit", help="submit one job")
    add_socket(p_submit)
    src = p_submit.add_mutually_exclusive_group(required=True)
    src.add_argument("--ref", help="path to an .npz from repro.io.save_tensor")
    src.add_argument("--random", metavar="I,J,K",
                     help="seeded random tensor of this shape (smoke tests)")
    p_submit.add_argument("--rank", type=int, required=True)
    p_submit.add_argument("--seed", type=int, default=None)
    p_submit.add_argument("--priority", type=int, default=0)
    p_submit.add_argument("--timeout", type=float, default=None)
    p_submit.add_argument("--n-iter-max", type=int, default=50)
    p_submit.add_argument("--tol", type=float, default=1e-8)
    p_submit.add_argument("--threads", type=int, default=None)
    p_submit.add_argument("--backend", default=None,
                          choices=("thread", "process"))
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the result and print a summary")
    p_submit.add_argument("--save", default=None,
                          help="with --wait: save the fitted model "
                               "(repro.io.save_model) to this .npz")

    p_status = sub.add_parser("status", help="one job's status snapshot")
    add_socket(p_status)
    p_status.add_argument("job_id")

    p_cancel = sub.add_parser("cancel", help="cancel a queued/running job")
    add_socket(p_cancel)
    p_cancel.add_argument("job_id")
    p_cancel.add_argument("--reason", default="cancelled")

    p_stats = sub.add_parser("stats", help="service metrics snapshot")
    add_socket(p_stats)

    p_shutdown = sub.add_parser("shutdown", help="stop a running server")
    add_socket(p_shutdown)
    p_shutdown.add_argument("--no-drain", action="store_true",
                            help="drop queued jobs instead of draining")

    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.api import serve_unix
    from repro.serve.server import JobServer, ServeConfig

    config = ServeConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        batching=not args.no_batching,
        batch_limit=args.batch_limit,
        start_method=args.start_method,
    )
    server = JobServer(config)
    print(f"repro-serve: {args.workers} workers on {args.socket}",
          file=sys.stderr)
    try:
        asyncio.run(serve_unix(server, args.socket))
    except KeyboardInterrupt:
        server.shutdown(drain=False, timeout=5.0)
    return 0


def _roundtrip(args: argparse.Namespace, payload: dict) -> dict:
    from repro.serve.api import request

    reply = request(args.socket, payload)
    if not reply.get("ok"):
        print(f"error [{reply.get('error')}]: {reply.get('message')}",
              file=sys.stderr)
        raise SystemExit(2)
    return reply


def _cmd_submit(args: argparse.Namespace) -> int:
    spec: dict = {
        "rank": args.rank,
        "seed": args.seed,
        "priority": args.priority,
        "timeout": args.timeout,
        "n_iter_max": args.n_iter_max,
        "tol": args.tol,
        "num_threads": args.threads,
        "backend": args.backend,
    }
    if args.ref is not None:
        spec["tensor_ref"] = args.ref
    else:
        import numpy as np

        shape = tuple(int(s) for s in args.random.split(","))
        rng = np.random.default_rng(args.seed or 0)
        spec["tensor"] = rng.standard_normal(shape).tolist()
    reply = _roundtrip(args, {"op": "submit", "spec": spec})
    job_id = reply["job_id"]
    print(job_id)
    if not args.wait:
        return 0
    reply = _roundtrip(args, {"op": "result", "job_id": job_id})
    result = reply["result"]
    print(json.dumps({k: result[k] for k in
                      ("job_id", "fit", "iterations", "converged",
                       "batched", "group_size", "wait_seconds",
                       "run_seconds")}, indent=2))
    if args.save:
        import numpy as np

        from repro.cpd.kruskal import KruskalTensor
        from repro.io import save_model

        model = KruskalTensor(
            [np.asarray(f) for f in result["factors"]],
            np.asarray(result["weights"]),
        )
        save_model(args.save, model)
        print(f"model saved to {args.save}", file=sys.stderr)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    reply = _roundtrip(args, {"op": "status", "job_id": args.job_id})
    print(json.dumps(reply["status"], indent=2))
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    reply = _roundtrip(args, {"op": "cancel", "job_id": args.job_id,
                              "reason": args.reason})
    print("cancelled" if reply["cancelled"] else "not cancellable")
    return 0 if reply["cancelled"] else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    reply = _roundtrip(args, {"op": "stats"})
    print(json.dumps(reply["stats"], indent=2))
    return 0


def _cmd_shutdown(args: argparse.Namespace) -> int:
    _roundtrip(args, {"op": "shutdown", "drain": not args.no_drain})
    print("shutdown requested")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    commands = {
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "cancel": _cmd_cancel,
        "stats": _cmd_stats,
        "shutdown": _cmd_shutdown,
    }
    return commands[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
