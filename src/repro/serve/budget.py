"""Admission control: payload validation and per-job resource budgets.

Everything here runs at :meth:`JobServer.submit` time, on the caller's
thread, *before* a job can touch the queue — the serving loop itself
never sees a malformed payload.  Two layers:

* :func:`validate_spec` — structural checks with typed
  :class:`~repro.serve.job.AdmissionError` rejections: exactly one
  payload source, float32/float64 dtype, order >= 2 with positive
  dimensions, finite entries (a NaN tensor can never converge — the fit
  goes NaN and burns the whole ``n_iter_max`` budget), positive rank,
  sane solver options;
* :func:`admit` — resource budgets validated against the machine model:
  the requested thread count against the model's cores, and the
  estimated working set (:func:`estimate_job_bytes`) against both the
  job's own ``arena_bytes`` budget and the server-wide cap.  Violations
  raise :class:`~repro.serve.job.BudgetError` carrying the
  requested/allowed numbers, so clients can resize and resubmit rather
  than guess.
"""

from __future__ import annotations

import os

import numpy as np

from repro.serve.job import AdmissionError, BudgetError, JobSpec
from repro.util import prod

__all__ = [
    "validate_spec",
    "admit",
    "estimate_job_bytes",
    "default_bytes_cap",
]

_ALLOWED_DTYPES = (np.float32, np.float64)


def default_bytes_cap() -> int:
    """Server-wide per-job memory cap default: a quarter of physical RAM.

    Falls back to 1 GiB where ``sysconf`` cannot say.
    """
    try:
        total = os.sysconf("SC_PAGE_SIZE") * os.sysconf("SC_PHYS_PAGES")
        if total > 0:
            return int(total // 4)
    except (ValueError, OSError, AttributeError):  # pragma: no cover
        pass
    return 1 << 30  # pragma: no cover - sysconf-less platforms


def estimate_job_bytes(
    shape: tuple[int, ...], rank: int, dtype, num_threads: int
) -> int:
    """Conservative working-set estimate for one CP-ALS job.

    Counts the resident tensor, the factor matrices, the MTTKRP output
    and KRP panel (the 1-step kernel's ``(max I_k, C)`` panels, one per
    worker), and the Gram/Hadamard stacks — roughly the
    :class:`~repro.parallel.workspace.Workspace` arena a run warms up
    to, padded 2x for kernel-private scratch (the 2-step partials are
    bounded by one extra tensor-sized buffer).
    """
    shape = tuple(int(s) for s in shape)
    rank = int(rank)
    itemsize = int(np.dtype(dtype).itemsize)
    volume = prod(shape)
    factors = sum(shape) * rank
    panels = max(shape) * rank * (int(num_threads) + 1)
    grams = rank * rank * (len(shape) + 2)
    return 2 * itemsize * (2 * volume + 2 * factors + panels + grams)


def validate_spec(spec: JobSpec) -> JobSpec:
    """Structural admission checks; returns a normalized copy.

    Inline tensors are unwrapped (:class:`~repro.tensor.dense.DenseTensor`
    accepted) and validated; ref payloads are checked for existence only
    (the worker loads them).  Raises :class:`AdmissionError` naming the
    offending field — never anything untyped.
    """
    from dataclasses import replace

    from repro.tensor.dense import DenseTensor

    if (spec.tensor is None) == (spec.tensor_ref is None):
        raise AdmissionError(
            "tensor", "exactly one of tensor / tensor_ref must be given"
        )
    rank = spec.rank
    if not isinstance(rank, (int, np.integer)) or isinstance(rank, bool):
        raise AdmissionError("rank", f"must be an int, got {type(rank).__name__}")
    if rank < 1:
        raise AdmissionError("rank", f"must be >= 1, got {rank}")
    if spec.n_iter_max < 1:
        raise AdmissionError(
            "n_iter_max", f"must be >= 1, got {spec.n_iter_max}"
        )
    if not np.isfinite(spec.tol):
        raise AdmissionError("tol", f"must be finite, got {spec.tol}")
    if spec.timeout is not None and not spec.timeout > 0:
        raise AdmissionError(
            "timeout", f"must be positive seconds, got {spec.timeout}"
        )
    if spec.num_threads is not None and spec.num_threads < 1:
        raise AdmissionError(
            "num_threads", f"must be >= 1, got {spec.num_threads}"
        )
    if spec.backend not in (None, "thread", "process"):
        raise AdmissionError(
            "backend", f"must be 'thread' or 'process', got {spec.backend!r}"
        )

    if spec.tensor_ref is not None:
        if not os.path.exists(spec.tensor_ref):
            raise AdmissionError(
                "tensor_ref", f"no such file: {spec.tensor_ref!r}"
            )
        return spec

    tensor = spec.tensor
    if not isinstance(tensor, DenseTensor):
        try:
            arr = np.asarray(tensor)
        except Exception as exc:
            raise AdmissionError(
                "tensor", f"not array-like: {exc}"
            ) from exc
        if arr.dtype not in _ALLOWED_DTYPES:
            raise AdmissionError(
                "tensor", f"dtype must be float32/float64, got {arr.dtype}"
            )
        if arr.ndim < 2:
            raise AdmissionError(
                "tensor", f"must be order >= 2, got order {arr.ndim}"
            )
        if any(s < 1 for s in arr.shape):
            raise AdmissionError(
                "tensor",
                f"all dimensions must be positive, got {arr.shape}",
            )
        tensor = DenseTensor(arr)  # one copy into natural layout
    else:
        if tensor.data.dtype not in _ALLOWED_DTYPES:
            raise AdmissionError(
                "tensor",
                f"dtype must be float32/float64, got {tensor.data.dtype}",
            )
        if tensor.ndim < 2:
            raise AdmissionError(
                "tensor", f"must be order >= 2, got order {tensor.ndim}"
            )
    if not np.isfinite(tensor.data).all():
        raise AdmissionError("tensor", "contains NaN or Inf entries")
    return replace(spec, tensor=tensor)


def admit(
    spec: JobSpec,
    *,
    shape: tuple[int, ...],
    dtype,
    max_threads: int,
    max_bytes: int,
) -> None:
    """Resource-budget admission for a structurally valid spec.

    ``max_threads`` comes from the machine model's core count,
    ``max_bytes`` from the server config; the job's own ``arena_bytes``
    can only tighten the latter.
    """
    threads = spec.num_threads if spec.num_threads is not None else 1
    if threads > max_threads:
        raise BudgetError(
            "num_threads", threads, max_threads,
            f"requested {threads} threads; the machine model allows "
            f"{max_threads}",
        )
    cap = max_bytes
    if spec.arena_bytes is not None:
        if spec.arena_bytes < 1:
            raise AdmissionError(
                "arena_bytes", f"must be positive, got {spec.arena_bytes}"
            )
        cap = min(cap, int(spec.arena_bytes))
    estimate = estimate_job_bytes(shape, spec.rank, dtype, threads)
    if estimate > cap:
        raise BudgetError(
            "arena_bytes", estimate, cap,
            f"estimated working set {estimate} B exceeds the budget "
            f"{cap} B (shape {tuple(shape)}, rank {spec.rank})",
        )
