"""The decomposition job server: admission, scheduling, workers, metrics.

:class:`JobServer` is the synchronous core the async facade
(:mod:`repro.serve.api`) and the CLI wrap.  One instance owns

* a bounded :class:`~repro.serve.queue.PriorityJobQueue` fed by
  :meth:`submit` (admission-checked, backpressure via
  :class:`~repro.serve.job.QueueFullError`),
* a pool of :class:`~repro.serve.worker.WorkerHandle` processes, each
  driven by one parent-side *tender* thread that pops jobs, dispatches
  them, relays progress, detects worker death
  (:class:`~repro.serve.worker.WorkerDied` -> fail only the in-flight
  job(s) with a chained :class:`~repro.parallel.pool.WorkerError`,
  respawn, keep serving),
* the coalescing policy (:mod:`repro.serve.scheduler`): a tender pops
  with a group claim, and same-(shape, rank, dtype, options) small jobs
  ride one :func:`~repro.batch.fleet.cp_als_fleet` invocation when the
  tuning cache says the stacked lane pays,
* service metrics — queue depth, shed count, wait/run latency
  percentiles, respawns — via :meth:`stats`.

Determinism contract: a solo job with ``seed=s`` returns bits equal to
``cp_als(tensor, rank, ..., rng=s)``; a coalesced group returns bits
equal to ``cp_als_fleet(members, rank, seeds=[...])`` over the same
ordered member list.  ``tests/test_oracle_serve.py`` pins both.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.serve import budget as _budget
from repro.serve.job import (
    JobNotFoundError,
    JobResult,
    JobSpec,
    JobState,
    JobStatus,
    QueueFullError,
    ServerClosedError,
)
from repro.serve.queue import PriorityJobQueue
from repro.serve.scheduler import batching_pays, group_key
from repro.serve.worker import WorkerDied, WorkerHandle

__all__ = ["ServeConfig", "JobServer", "JobHandle"]

_clock = time.monotonic


@dataclass(frozen=True)
class ServeConfig:
    """Server knobs (all have serving-safe defaults).

    Attributes
    ----------
    workers:
        Worker processes (= concurrent jobs).  Defaults to 2.
    queue_depth:
        Backpressure bound on *queued* (not running) jobs; submissions
        past it raise :class:`~repro.serve.job.QueueFullError`.
    max_threads:
        Per-job thread-budget ceiling; defaults to the machine model's
        core count.
    max_bytes:
        Per-job working-set ceiling; defaults to a quarter of physical
        RAM (:func:`repro.serve.budget.default_bytes_cap`).
    batching:
        Enable the coalescing scheduler.
    batch_limit:
        Most jobs one fleet invocation may absorb.
    max_item_elems:
        Elements above which a ``batchable=None`` job is never
        coalesced (matches the batched engine's small-tensor regime).
    progress_every:
        Stream a progress message every N iterations (0 disables).
    poll_interval:
        Tender pipe-poll granularity in seconds.
    start_method:
        ``multiprocessing`` start method for the worker pool; defaults
        to ``$REPRO_MP_START`` or ``fork`` where available.
    paused:
        Start with dispatch paused (tests submit a deterministic batch,
        then :meth:`JobServer.resume`).
    """

    workers: int = 2
    queue_depth: int = 64
    max_threads: int | None = None
    max_bytes: int | None = None
    batching: bool = True
    batch_limit: int = 16
    max_item_elems: int = 1 << 14
    progress_every: int = 1
    poll_interval: float = 0.02
    start_method: str | None = None
    paused: bool = False


class _Job:
    """Server-internal mutable job record (guarded by the server lock)."""

    __slots__ = (
        "job_id", "spec", "tensor", "state", "submitted_at", "started_at",
        "finished_at", "deadline", "error", "exception", "progress",
        "batched", "group_size", "result", "done", "handle", "token_sent",
    )

    def __init__(self, job_id: str, spec: JobSpec, now: float) -> None:
        self.job_id = job_id
        self.spec = spec
        self.tensor = spec.tensor  # None for ref jobs
        self.state = JobState.QUEUED
        self.submitted_at = now
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.deadline = (
            None if spec.timeout is None else now + float(spec.timeout)
        )
        self.error: str | None = None
        self.exception: BaseException | None = None
        self.progress: tuple[int, float] | None = None
        self.batched = False
        self.group_size = 1
        self.result: JobResult | None = None
        self.done = threading.Event()
        self.handle: WorkerHandle | None = None
        self.token_sent = False


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def _mp_context(start_method: str | None):
    method = start_method or os.environ.get("REPRO_MP_START")
    if method is None:
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
    return multiprocessing.get_context(method)


class JobHandle:
    """Client-side convenience: one submitted job's id + accessors."""

    __slots__ = ("_server", "job_id")

    def __init__(self, server: "JobServer", job_id: str) -> None:
        self._server = server
        self.job_id = job_id

    def status(self) -> JobStatus:
        return self._server.status(self.job_id)

    def result(self, timeout: float | None = None) -> JobResult:
        return self._server.result(self.job_id, timeout=timeout)

    def wait(self, timeout: float | None = None) -> bool:
        return self._server.wait(self.job_id, timeout=timeout)

    def cancel(self, reason: str = "cancelled") -> bool:
        return self._server.cancel(self.job_id, reason=reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobHandle({self.job_id!r})"


class JobServer:
    """See module docstring.  Thread-safe; one instance per pool."""

    def __init__(self, config: ServeConfig | None = None, **overrides) -> None:
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        if config.workers < 1:
            raise ValueError(f"need >= 1 worker, got {config.workers}")
        self.config = config
        from repro.machine.model import host_model_default

        cores = host_model_default().cores
        self._max_threads = (
            int(config.max_threads) if config.max_threads is not None
            else int(cores)
        )
        self._max_bytes = (
            int(config.max_bytes) if config.max_bytes is not None
            else _budget.default_bytes_cap()
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, _Job] = {}
        self._seq = itertools.count(1)
        self._queue = PriorityJobQueue(config.queue_depth)
        self._closed = False
        self._resume = threading.Event()
        if not config.paused:
            self._resume.set()
        # metrics (guarded by the server lock)
        self._shed = 0
        self._timeouts = 0
        self._wait_times: list[float] = []
        self._run_times: list[float] = []
        self._completed = 0
        self._failed = 0
        self._cancelled = 0
        self._coalesced_groups = 0
        self._coalesced_jobs = 0
        self._dispatch_log: list[tuple[str, ...]] = []

        ctx = _mp_context(config.start_method)
        self._handles = [WorkerHandle(r, ctx) for r in range(config.workers)]
        self._tenders = [
            threading.Thread(
                target=self._tend, args=(h,), name=f"repro-serve-tender-{h.rank}",
                daemon=True,
            )
            for h in self._handles
        ]
        for t in self._tenders:
            t.start()
        atexit.register(self._atexit)

    # ------------------------------------------------------------------ #
    # Client API
    # ------------------------------------------------------------------ #

    def submit(self, spec: JobSpec | None = None, /, **kwargs) -> JobHandle:
        """Admit one job; returns its handle or raises a typed rejection.

        Accepts a prebuilt :class:`JobSpec` or its keyword fields.
        Raises :class:`~repro.serve.job.AdmissionError` (malformed),
        :class:`~repro.serve.job.BudgetError` (over budget),
        :class:`~repro.serve.job.QueueFullError` (backpressure), or
        :class:`~repro.serve.job.ServerClosedError` (after shutdown).
        """
        if spec is None:
            spec = JobSpec(**kwargs)
        elif kwargs:
            spec = replace(spec, **kwargs)
        if self._closed:
            raise ServerClosedError("server is shut down")
        spec = _budget.validate_spec(spec)
        if spec.tensor is not None:
            _budget.admit(
                spec,
                shape=spec.tensor.shape,
                dtype=spec.tensor.data.dtype,
                max_threads=self._max_threads,
                max_bytes=self._max_bytes,
            )
        elif spec.num_threads is not None and spec.num_threads > self._max_threads:
            # Ref jobs: the tensor never transits the parent, so only
            # the thread budget is checkable at admission.
            from repro.serve.job import BudgetError

            raise BudgetError(
                "num_threads", spec.num_threads, self._max_threads,
                f"requested {spec.num_threads} threads; the machine model "
                f"allows {self._max_threads}",
            )
        now = _clock()
        job_id = f"job-{next(self._seq):06d}"
        job = _Job(job_id, spec, now)
        key = None
        if self.config.batching:
            key = group_key(job, max_item_elems=self.config.max_item_elems)
        with self._lock:
            if self._closed:
                raise ServerClosedError("server is shut down")
            self._jobs[job_id] = job
        try:
            self._queue.put(job_id, job, priority=spec.priority, key=key)
        except QueueFullError:
            with self._lock:
                self._shed += 1
                del self._jobs[job_id]
            raise
        return JobHandle(self, job_id)

    def status(self, job_id: str) -> JobStatus:
        job = self._get(job_id)
        with self._lock:
            return JobStatus(
                job_id=job.job_id,
                state=job.state,
                priority=job.spec.priority,
                submitted_at=job.submitted_at,
                started_at=job.started_at,
                finished_at=job.finished_at,
                error=job.error,
                progress=job.progress,
                batched=job.batched,
                group_size=job.group_size,
            )

    def wait(self, job_id: str, timeout: float | None = None) -> bool:
        """Block until the job is terminal; True if it reached a state."""
        return self._get(job_id).done.wait(timeout)

    def result(self, job_id: str, timeout: float | None = None) -> JobResult:
        """The job's :class:`JobResult`; blocks until terminal.

        Raises :class:`TimeoutError` if the wait times out, or re-raises
        the job's failure: the shipped worker exception (``__cause__``
        chain intact) for ``FAILED``, :class:`~repro.util.cancel.Cancelled`
        for ``CANCELLED``, :class:`~repro.util.cancel.DeadlineExceeded`
        for ``TIMEOUT``.
        """
        job = self._get(job_id)
        if not job.done.wait(timeout):
            raise TimeoutError(
                f"{job_id} still {job.state.value} after {timeout}s"
            )
        if job.state is JobState.DONE:
            assert job.result is not None
            return job.result
        if job.exception is not None:
            raise job.exception
        from repro.util.cancel import Cancelled, DeadlineExceeded

        if job.state is JobState.TIMEOUT:
            raise DeadlineExceeded(job.deadline or 0.0)
        raise Cancelled(job.error or "cancelled")

    def cancel(self, job_id: str, reason: str = "cancelled") -> bool:
        """Cancel a job; True if the cancellation will take effect.

        Queued jobs drop immediately.  Running solo jobs get a
        cooperative cancel delivered to their worker (the run stops at
        the next iteration boundary).  Running *coalesced* members are
        not cancellable — a fleet advances in lock-step, and stopping it
        would take the co-tenants down too — so those return ``False``,
        as do already-terminal jobs.
        """
        job = self._get(job_id)
        if self._queue.cancel(job_id) is not None:
            self._finalize(job, JobState.CANCELLED, error=reason)
            return True
        with self._lock:
            if job.state is not JobState.RUNNING:
                return False
            if job.batched and job.group_size > 1:
                return False
            handle = job.handle
            if job.token_sent or handle is None:
                return job.token_sent
            job.token_sent = True
        try:
            handle.send(("cancel", job_id, reason))
        except WorkerDied:
            # The tender will observe the death and fail the job anyway.
            return True
        return True

    def stats(self) -> dict:
        """Service metrics snapshot (JSON-ready)."""
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
            return {
                "queue_depth": len(self._queue),
                "queue_bound": self.config.queue_depth,
                "workers": len(self._handles),
                "respawns": sum(h.respawns for h in self._handles),
                "states": states,
                "admitted": sum(states.values()),
                "shed": self._shed,
                "completed": self._completed,
                "failed": self._failed,
                "cancelled": self._cancelled,
                "timeouts": self._timeouts,
                "coalesced_groups": self._coalesced_groups,
                "coalesced_jobs": self._coalesced_jobs,
                "wait_p50": _percentile(self._wait_times, 0.50),
                "wait_p99": _percentile(self._wait_times, 0.99),
                "run_p50": _percentile(self._run_times, 0.50),
                "run_p99": _percentile(self._run_times, 0.99),
            }

    def dispatch_log(self) -> list[tuple[str, ...]]:
        """Ordered record of dispatches: ``(kind, job_id, ...)`` tuples.

        ``("solo", job_id)`` or ``("group", head_id, member_id, ...)`` —
        the oracle tests use this to learn the actual grouping.
        """
        with self._lock:
            return list(self._dispatch_log)

    def pause(self) -> None:
        """Stop dispatching (running jobs finish; the queue holds)."""
        self._resume.clear()

    def resume(self) -> None:
        self._resume.set()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until the queue is empty and no job is running."""
        end = None if timeout is None else _clock() + timeout
        while True:
            with self._lock:
                busy = any(
                    j.state in (JobState.QUEUED, JobState.RUNNING)
                    for j in self._jobs.values()
                )
            if not busy:
                return True
            if end is not None and _clock() >= end:
                return False
            time.sleep(0.005)

    def shutdown(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Stop the server.

        ``drain=True`` (default): stop admitting, let tenders finish
        everything queued and running, then stop the workers.
        ``drain=False``: drop queued jobs as ``CANCELLED``, deliver a
        cooperative cancel to running jobs, and tear down.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if drain:
            self._resume.set()
            self._queue.wait_empty(timeout)
            remaining = self._queue.close()
        else:
            remaining = self._queue.close()
        # Finalize dropped entries *before* waiting for idle — wait_idle
        # watches job states, and these will never be dispatched.
        for job in remaining:
            self._finalize(job, JobState.CANCELLED, error="server shutdown")
        if not drain:
            with self._lock:
                running = [
                    j for j in self._jobs.values()
                    if j.state is JobState.RUNNING
                ]
            for job in running:
                if job.handle is not None:
                    try:
                        job.handle.send(
                            ("cancel", job.job_id, "server shutdown")
                        )
                    except WorkerDied:
                        pass
        self._resume.set()
        self.wait_idle(timeout)
        for t in self._tenders:
            t.join(timeout)
        for h in self._handles:
            h.stop()
        atexit.unregister(self._atexit)

    def _atexit(self) -> None:  # pragma: no cover - interpreter teardown
        for h in self._handles:
            try:
                h.stop(timeout=0.5)
            except Exception:
                pass

    def __enter__(self) -> "JobServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(drain=exc == (None, None, None))

    # ------------------------------------------------------------------ #
    # Tender loop (one thread per worker)
    # ------------------------------------------------------------------ #

    def _tend(self, handle: WorkerHandle) -> None:
        cfg = self.config
        group_limit = cfg.batch_limit if cfg.batching else 1

        def key_of(job: _Job):
            if not cfg.batching:
                return None
            return group_key(job, max_item_elems=cfg.max_item_elems)

        while True:
            self._resume.wait(0.1)
            if not self._resume.is_set():
                if self._queue.closed and len(self._queue) == 0:
                    return
                continue
            popped = self._queue.pop(
                timeout=0.1, group_key=key_of, group_limit=group_limit
            )
            if popped is None:
                if self._queue.closed:
                    return
                continue
            now = _clock()
            live: list[_Job] = []
            for job in popped:
                if job.deadline is not None and now > job.deadline:
                    with self._lock:
                        self._timeouts += 1
                    self._finalize(
                        job, JobState.TIMEOUT,
                        error="deadline passed while queued",
                    )
                else:
                    live.append(job)
            if not live:
                continue
            if len(live) > 1:
                key = key_of(live[0])
                if key is not None and batching_pays(key, len(live)):
                    self._run_group(handle, live)
                    continue
            for job in live:
                self._run_solo(handle, job)

    # -- dispatch ------------------------------------------------------- #

    def _mark_running(self, jobs: list[_Job], handle: WorkerHandle,
                      batched: bool) -> None:
        now = _clock()
        with self._lock:
            for job in jobs:
                job.state = JobState.RUNNING
                job.started_at = now
                job.handle = handle
                job.batched = batched
                job.group_size = len(jobs)
                self._wait_times.append(now - job.submitted_at)
            if batched:
                self._coalesced_groups += 1
                self._coalesced_jobs += len(jobs)
                self._dispatch_log.append(
                    ("group",) + tuple(j.job_id for j in jobs)
                )
            else:
                self._dispatch_log.append(("solo", jobs[0].job_id))

    def _solo_payload(self, job: _Job) -> dict:
        spec = job.spec
        now = _clock()
        return {
            "kind": "solo",
            "job_id": job.job_id,
            "rank": spec.rank,
            "data": None if job.tensor is None else job.tensor.data,
            "shape": None if job.tensor is None else tuple(job.tensor.shape),
            "ref": spec.tensor_ref,
            "n_iter_max": spec.n_iter_max,
            "tol": spec.tol,
            "method": spec.method,
            "num_threads": spec.num_threads,
            "backend": spec.backend,
            "seed": spec.seed,
            "trace": spec.trace,
            "progress_every": self.config.progress_every,
            "timeout_remaining": (
                None if job.deadline is None else max(0.0, job.deadline - now)
            ),
        }

    def _group_payload(self, jobs: list[_Job]) -> dict:
        head = jobs[0].spec
        return {
            "kind": "group",
            "job_id": jobs[0].job_id,
            "rank": head.rank,
            "shape": tuple(jobs[0].tensor.shape),
            "datas": [j.tensor.data for j in jobs],
            "seeds": [j.spec.seed for j in jobs],
            "n_iter_max": head.n_iter_max,
            "tol": head.tol,
            "num_threads": head.num_threads,
            "backend": head.backend,
            "trace": False,
            "progress_every": self.config.progress_every,
            "timeout_remaining": None,
        }

    def _run_solo(self, handle: WorkerHandle, job: _Job) -> None:
        self._mark_running([job], handle, batched=False)
        self._dispatch([job], handle, self._solo_payload(job))

    def _run_group(self, handle: WorkerHandle, jobs: list[_Job]) -> None:
        self._mark_running(jobs, handle, batched=True)
        self._dispatch(jobs, handle, self._group_payload(jobs))

    def _dispatch(self, jobs: list[_Job], handle: WorkerHandle,
                  payload: dict) -> None:
        try:
            handle.send(("job", payload))
        except WorkerDied:
            # Dead before the job ever started: respawn and retry once
            # (the retry cannot double-run — nothing was dispatched).
            handle.respawn()
            try:
                handle.send(("job", payload))
            except WorkerDied as died:
                self._fail_with_death(jobs, died)
                return
        self._await(jobs, handle)

    def _await(self, jobs: list[_Job], handle: WorkerHandle) -> None:
        """Pump the worker pipe until this dispatch resolves."""
        head_id = jobs[0].job_id
        while True:
            try:
                msg = handle.recv(timeout=self.config.poll_interval)
            except WorkerDied as died:
                self._fail_with_death(jobs, died)
                handle.respawn()
                return
            if msg is None:
                continue
            kind = msg[0]
            if kind == "progress":
                _, job_id, it, fit = msg
                with self._lock:
                    for job in jobs:
                        job.progress = (int(it), float(fit))
                continue
            if msg[1] != head_id:  # stale reply from a cancelled epoch
                continue
            if kind == "done":
                self._complete(jobs[0], msg[2])
            elif kind == "done-group":
                for job, rd in zip(jobs, msg[2]):
                    self._complete(job, rd)
            elif kind == "failed":
                _, _, exc_bytes, exc_repr, tb_text = msg
                exc: BaseException
                if exc_bytes is not None:
                    import pickle

                    try:
                        exc = pickle.loads(exc_bytes)
                    except Exception:
                        exc = RuntimeError(exc_repr)
                else:
                    exc = RuntimeError(exc_repr)
                for job in jobs:
                    self._finalize(
                        job, JobState.FAILED,
                        error=f"{exc_repr}\n{tb_text}", exception=exc,
                    )
            elif kind == "cancelled":
                reason = msg[2]
                state = (
                    JobState.TIMEOUT
                    if reason == "deadline exceeded" else JobState.CANCELLED
                )
                if state is JobState.TIMEOUT:
                    with self._lock:
                        self._timeouts += 1
                for job in jobs:
                    self._finalize(job, state, error=reason)
            return

    def _fail_with_death(self, jobs: list[_Job], died: WorkerDied) -> None:
        for job in jobs:
            err = died.as_worker_error()
            self._finalize(
                job, JobState.FAILED, error=str(err), exception=err,
            )

    # -- completion ----------------------------------------------------- #

    def _complete(self, job: _Job, rd: dict) -> None:
        now = _clock()
        result = JobResult(
            job_id=job.job_id,
            weights=np.asarray(rd["weights"]),
            factors=[np.asarray(f) for f in rd["factors"]],
            fit=rd["fit"],
            iterations=rd["iterations"],
            converged=rd["converged"],
            batched=job.batched,
            group_size=job.group_size,
            wait_seconds=(
                (job.started_at or job.submitted_at) - job.submitted_at
            ),
            run_seconds=now - (job.started_at or now),
            counters=rd.get("counters") or {},
            trace=rd.get("trace"),
        )
        with self._lock:
            job.result = result
        self._finalize(job, JobState.DONE)

    def _finalize(self, job: _Job, state: JobState, error: str | None = None,
                  exception: BaseException | None = None) -> None:
        now = _clock()
        with self._lock:
            if job.state.terminal:
                return
            job.state = state
            job.finished_at = now
            job.error = error
            job.exception = exception
            if job.started_at is not None:
                self._run_times.append(now - job.started_at)
            if state is JobState.DONE:
                self._completed += 1
            elif state is JobState.FAILED:
                self._failed += 1
            elif state is JobState.CANCELLED:
                self._cancelled += 1
        job.done.set()

    # ------------------------------------------------------------------ #

    def _get(self, job_id: str) -> _Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        return job
