"""Decomposition-as-a-service: an async multi-tenant CP-ALS job server.

Public surface:

* :class:`~repro.serve.server.JobServer` / :class:`~repro.serve.server.ServeConfig`
  — the synchronous core: bounded priority queue, admission control,
  coalescing scheduler, worker-process pool with death detection and
  respawn, per-job metrics;
* :class:`~repro.serve.job.JobSpec` and friends — the job vocabulary
  and typed error hierarchy;
* :class:`~repro.serve.api.AsyncJobServer`, :func:`~repro.serve.api.serve_unix`,
  :func:`~repro.serve.api.request` — asyncio facade and unix-socket
  JSON-lines protocol (the ``repro-serve`` CLI speaks it).

See ``docs/serving.md`` for the architecture and guarantees.
"""

from repro.serve.job import (
    AdmissionError,
    BudgetError,
    JobNotFoundError,
    JobResult,
    JobSpec,
    JobState,
    JobStatus,
    QueueFullError,
    ServeError,
    ServerClosedError,
)
from repro.serve.queue import PriorityJobQueue
from repro.serve.server import JobHandle, JobServer, ServeConfig

__all__ = [
    "JobServer",
    "ServeConfig",
    "JobHandle",
    "JobSpec",
    "JobState",
    "JobStatus",
    "JobResult",
    "PriorityJobQueue",
    "ServeError",
    "AdmissionError",
    "BudgetError",
    "QueueFullError",
    "JobNotFoundError",
    "ServerClosedError",
]
