"""Cross-PR regression tracking over committed benchmark history.

The per-PR speed scoreboard the ROADMAP demands: load every normalized
results file committed under ``results/``, pick a baseline per
``(benchmark, case, host_class)``, diff a current run against it, render
a trend report (text table and/or JSON) and **fail loudly** — nonzero
exit status, offending benchmarks named — when a case got slower than
the tolerance allows.

Tolerance is two-sided on purpose: a *relative* band (default ±25 %,
matching the ~20–30 % run-to-run noise EXPERIMENTS.md documents for the
1-CPU container) and an *absolute floor* (default 50 µs) below which a
difference is never a verdict — microsecond-scale kernels on a shared
core jitter by more than their own cost.  Both knobs are CLI-exposed so
a quiet many-core host can tighten them.

Baselines are matched by :func:`repro.bench.env.host_class` — an
``x86_64-1cpu`` container never diffs against a 12-core Xeon's history.
"""

from __future__ import annotations

import json
import sys
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.bench.env import host_class_of
from repro.bench.schema import load_history

__all__ = [
    "TrendResult",
    "Comparison",
    "compare",
    "render_text",
    "render_json",
    "EXIT_OK",
    "EXIT_REGRESSION",
]

#: Exit codes of ``repro-bench trend`` (and :func:`repro.bench.cli.main`).
EXIT_OK = 0
EXIT_REGRESSION = 3

DEFAULT_TOLERANCE = 0.25
DEFAULT_ABS_FLOOR_S = 5e-5


def _median(record: dict) -> float:
    return float(record["timing"]["median_s"])


def _key(record: dict) -> tuple[str, str, str]:
    return (
        record["benchmark"],
        record["case"],
        host_class_of(record.get("host", {})),
    )


def _rev_label(record: dict) -> str:
    rev = record.get("host", {}).get("git_rev") or "unknown"
    label = rev[:10]
    if record.get("host", {}).get("git_dirty"):
        label += "+dirty"
    return label


@dataclass(frozen=True)
class Comparison:
    """One case diffed against its baseline."""

    benchmark: str
    case: str
    host_class: str
    current_s: float
    baseline_s: float | None
    baseline_rev: str | None
    baseline_file: str | None
    ratio: float | None
    status: str  # "regression" | "improvement" | "ok" | "no-baseline"


@dataclass
class TrendResult:
    """Outcome of one trend evaluation."""

    comparisons: list[Comparison] = field(default_factory=list)
    tolerance: float = DEFAULT_TOLERANCE
    abs_floor_s: float = DEFAULT_ABS_FLOOR_S
    baseline_policy: str = "best"

    @property
    def regressions(self) -> list[Comparison]:
        return [c for c in self.comparisons if c.status == "regression"]

    @property
    def improvements(self) -> list[Comparison]:
        return [c for c in self.comparisons if c.status == "improvement"]

    @property
    def exit_code(self) -> int:
        return EXIT_REGRESSION if self.regressions else EXIT_OK


def select_baselines(
    history: Sequence[dict], policy: str = "best"
) -> dict[tuple[str, str, str], dict]:
    """Baseline record per (benchmark, case, host_class).

    ``policy="best"`` keeps the fastest median ever committed (the honest
    "did we ever do better?" bar); ``"latest"`` keeps the newest record
    (the "did this PR make it worse than last PR?" bar).
    """
    if policy not in ("best", "latest"):
        raise ValueError(f"unknown baseline policy {policy!r}")
    chosen: dict[tuple[str, str, str], dict] = {}
    for record in history:
        key = _key(record)
        incumbent = chosen.get(key)
        if incumbent is None:
            chosen[key] = record
        elif policy == "best" and _median(record) < _median(incumbent):
            chosen[key] = record
        elif policy == "latest" and (
            record.get("created_unix", 0) > incumbent.get("created_unix", 0)
        ):
            chosen[key] = record
    return chosen


def compare(
    current: Sequence[dict],
    history: Sequence[dict],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    abs_floor_s: float = DEFAULT_ABS_FLOOR_S,
    baseline: str = "best",
) -> TrendResult:
    """Diff current records against history baselines.

    A case is a **regression** when its median exceeds the baseline by
    more than ``tolerance`` relatively *and* ``abs_floor_s`` absolutely;
    an **improvement** mirrors that on the fast side; everything in the
    band is **ok**.  Cases with no same-host-class baseline are reported
    as ``no-baseline`` (informational, never failing).
    """
    baselines = select_baselines(history, baseline)
    result = TrendResult(
        tolerance=float(tolerance),
        abs_floor_s=float(abs_floor_s),
        baseline_policy=baseline,
    )
    for record in current:
        key = _key(record)
        cur = _median(record)
        base = baselines.get(key)
        if base is None:
            result.comparisons.append(Comparison(
                benchmark=key[0], case=key[1], host_class=key[2],
                current_s=cur, baseline_s=None, baseline_rev=None,
                baseline_file=None, ratio=None, status="no-baseline",
            ))
            continue
        base_s = _median(base)
        ratio = cur / base_s if base_s > 0 else float("inf")
        delta = cur - base_s
        if delta > abs_floor_s and (base_s <= 0 or ratio > 1.0 + tolerance):
            status = "regression"
        elif -delta > abs_floor_s and base_s > 0 and ratio < 1.0 - tolerance:
            status = "improvement"
        else:
            status = "ok"
        result.comparisons.append(Comparison(
            benchmark=key[0], case=key[1], host_class=key[2],
            current_s=cur, baseline_s=base_s,
            baseline_rev=_rev_label(base),
            baseline_file=base.get("context", {}).get("file"),
            ratio=ratio, status=status,
        ))
    return result


def evaluate(
    current: Sequence[dict],
    results_dir: str,
    *,
    exclude_files: Sequence[str] = (),
    tolerance: float = DEFAULT_TOLERANCE,
    abs_floor_s: float = DEFAULT_ABS_FLOOR_S,
    baseline: str = "best",
) -> TrendResult:
    """:func:`compare` against the history committed in ``results_dir``."""
    history = load_history(results_dir, exclude=exclude_files)
    return compare(
        current, history,
        tolerance=tolerance, abs_floor_s=abs_floor_s, baseline=baseline,
    )


_STATUS_MARK = {
    "regression": "REGRESSION",
    "improvement": "improved",
    "ok": "ok",
    "no-baseline": "no-baseline",
}


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def render_text(result: TrendResult, out=None) -> None:
    """Human trend report: one row per case, regressions summarized last."""
    out = out or sys.stdout
    header = ["benchmark", "case", "host-class", "baseline", "current",
              "ratio", "status", "baseline-rev"]
    rows = []
    for c in sorted(result.comparisons,
                    key=lambda c: (c.benchmark, c.case)):
        rows.append([
            c.benchmark,
            c.case,
            c.host_class,
            _fmt_seconds(c.baseline_s),
            _fmt_seconds(c.current_s),
            f"{c.ratio:.2f}x" if c.ratio is not None else "-",
            _STATUS_MARK[c.status],
            c.baseline_rev or "-",
        ])
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows
        else len(header[i])
        for i in range(len(header))
    ]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)), file=out)
    print("  ".join("-" * w for w in widths), file=out)
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)), file=out)
    print(
        f"\n{len(result.comparisons)} case(s): "
        f"{len(result.regressions)} regression(s), "
        f"{len(result.improvements)} improvement(s), "
        f"{sum(1 for c in result.comparisons if c.status == 'no-baseline')} "
        f"without baseline "
        f"(policy={result.baseline_policy}, tolerance="
        f"{result.tolerance:.0%}, floor={_fmt_seconds(result.abs_floor_s)})",
        file=out,
    )
    if result.regressions:
        names = sorted({f"{c.benchmark}:{c.case}" for c in result.regressions})
        print("REGRESSED: " + ", ".join(names), file=out)


def render_json(result: TrendResult) -> dict:
    """Machine-readable trend report (the text table's exact content)."""
    return {
        "kind": "repro-bench-trend",
        "baseline_policy": result.baseline_policy,
        "tolerance": result.tolerance,
        "abs_floor_s": result.abs_floor_s,
        "exit_code": result.exit_code,
        "regressions": [f"{c.benchmark}:{c.case}" for c in result.regressions],
        "comparisons": [
            {
                "benchmark": c.benchmark,
                "case": c.case,
                "host_class": c.host_class,
                "current_s": c.current_s,
                "baseline_s": c.baseline_s,
                "baseline_rev": c.baseline_rev,
                "baseline_file": c.baseline_file,
                "ratio": c.ratio,
                "status": c.status,
            }
            for c in result.comparisons
        ],
    }


def save_json(result: TrendResult, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(render_json(result), fh, indent=1)
        fh.write("\n")
    return path
