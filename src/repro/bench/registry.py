"""Benchmark registry: name → spec + runner, one way to run any subset.

The ``FIGURES``-registry pattern applied to this repo's whole benchmark
surface: every measurable experiment — the paper figures (fig4–fig8), the
dimension-tree comparison, the autotuner economics, the parallel-runtime
overheads, the design ablations — registers a :class:`BenchSpec` here, so

* ``repro-bench list`` enumerates them with tags and descriptions,
* ``repro-bench run <name> --scale ...`` executes any subset, and
* every runner returns the **same normalized schema records**
  (:mod:`repro.bench.schema`), ready for ``results/`` history and the
  :mod:`repro.bench.trend` regression tracker.

Specs are registered by :mod:`repro.bench.suites` at import time;
:func:`get_spec` / :func:`run_benchmark` trigger that import lazily so
importing this module stays cheap.

Runner contract
---------------
``runner(scale, threads, repeats, rng) -> list[record]`` where ``scale``
is a volumetric fraction of the paper workload (same semantics as the
figure drivers), ``threads`` a tuple of thread counts, and each record
validates against :func:`repro.bench.schema.validate_record`.  The
:func:`measure_case` helper implements the standard shape: time the
kernel untraced, then run one instrumented repetition under
:func:`repro.obs.capture` to attach FLOP/byte/imbalance counters.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import repro.obs as obs
from repro.bench.schema import new_record, timing_from_stats, validate_record
from repro.bench.timing import time_samples

__all__ = [
    "BenchSpec",
    "register",
    "get_spec",
    "list_specs",
    "benchmark_names",
    "run_benchmark",
    "measure_case",
]


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark: identity, defaults and runner."""

    name: str
    title: str
    runner: Callable[..., list[dict]]
    tags: tuple[str, ...] = ()
    default_scale: float = 0.002
    default_repeats: int = 3


_REGISTRY: dict[str, BenchSpec] = {}
_suites_loaded = False


def register(
    name: str,
    *,
    title: str,
    tags: Sequence[str] = (),
    default_scale: float = 0.002,
    default_repeats: int = 3,
) -> Callable[[Callable], Callable]:
    """Decorator registering a runner under ``name``.

    >>> @register("demo", title="example")            # doctest: +SKIP
    ... def _run(scale, threads, repeats, rng): ...
    """

    def decorate(fn: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"benchmark {name!r} already registered")
        _REGISTRY[name] = BenchSpec(
            name=name,
            title=title,
            runner=fn,
            tags=tuple(tags),
            default_scale=default_scale,
            default_repeats=default_repeats,
        )
        return fn

    return decorate


def _load_suites() -> None:
    global _suites_loaded
    if not _suites_loaded:
        _suites_loaded = True
        import repro.bench.suites  # noqa: F401  (registers specs)


def benchmark_names() -> list[str]:
    """Sorted names of every registered benchmark."""
    _load_suites()
    return sorted(_REGISTRY)


def list_specs(tag: str | None = None) -> list[BenchSpec]:
    """All specs, optionally filtered to one tag."""
    _load_suites()
    specs = [_REGISTRY[name] for name in sorted(_REGISTRY)]
    if tag is not None:
        specs = [s for s in specs if tag in s.tags]
    return specs


def get_spec(name: str) -> BenchSpec:
    """Lookup one spec; unknown names list what is available."""
    _load_suites()
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown benchmark {name!r}; available: {available}"
        ) from None


def run_benchmark(
    name: str,
    *,
    scale: float | None = None,
    threads: Sequence[int] = (1, 2),
    repeats: int | None = None,
    rng: int = 0,
) -> list[dict]:
    """Run one registered benchmark; returns its normalized records.

    Every record gets the shared run context (source, scale, threads,
    repeats, rng) merged into ``context`` and is schema-validated before
    being returned — a runner that produces a malformed record fails
    here, not at trend time.
    """
    spec = get_spec(name)
    scale = spec.default_scale if scale is None else float(scale)
    repeats = spec.default_repeats if repeats is None else int(repeats)
    threads = tuple(int(t) for t in threads)
    records = spec.runner(scale=scale, threads=threads, repeats=repeats, rng=rng)
    context = {
        "source": "repro-bench",
        "scale": scale,
        "threads": list(threads),
        "repeats": repeats,
        "rng": rng,
    }
    for record in records:
        if record.get("benchmark") != name:
            raise ValueError(
                f"runner for {name!r} produced a record labelled "
                f"{record.get('benchmark')!r}"
            )
        record["context"] = {**context, **record.get("context", {})}
        validate_record(record)
    return records


def measure_case(
    benchmark: str,
    case: str,
    fn: Callable[[], object],
    *,
    params: dict | None = None,
    repeats: int = 3,
    warmup: int = 1,
    capture_counters: bool = True,
) -> dict:
    """Measure ``fn`` into one normalized record.

    Timed repetitions run untraced; one extra instrumented repetition
    under :func:`repro.obs.capture` supplies the obs counters, so
    instrumentation overhead never contaminates the timing statistics.
    """
    samples = time_samples(fn, repeats=repeats, warmup=warmup)
    counters: dict[str, float] = {}
    if capture_counters:
        with obs.capture() as tracer:
            fn()
        counters = obs.counters_snapshot(tracer)
    return new_record(
        benchmark,
        case,
        timing=timing_from_stats(samples),
        params=params,
        counters=counters,
    )
