"""``repro-bench`` — one CLI for the whole benchmark registry.

Subcommands::

    repro-bench list [--tag TAG]
    repro-bench run NAME... [--scale S] [--threads 1,2] [--repeats K]
                            [--rng SEED] [--out FILE] [--root-summary]
    repro-bench trend [--results DIR] [--current FILE] [--baseline best|latest]
                      [--tolerance F] [--abs-floor S] [--json FILE]
    repro-bench migrate [--results DIR] [--keep-legacy]

``run`` executes any subset of registered benchmarks at a chosen scale
and writes one normalized results file (default
``results/current.bench.json`` — deliberately *not* part of committed
history; promote a run by renaming it to ``<something>.bench.json`` you
commit).  ``--root-summary`` additionally writes one repo-root
``BENCH_<suite>.json`` schema-v1 envelope per benchmark run — a
stable, discoverable snapshot of each suite's latest numbers
(``load_history`` only globs ``*.bench.json`` inside the results
directory, so the root summaries never pollute trend baselines).
``trend`` then diffs the current file against the committed history
and exits with status ``3`` naming the regressed benchmarks.

Also reachable as ``python -m repro.bench``.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import trend as trend_mod
from repro.bench.env import host_class
from repro.bench.migrate import migrate_results
from repro.bench.registry import get_spec, list_specs, run_benchmark
from repro.bench.schema import SchemaError, load_results, write_results

__all__ = ["main", "build_parser"]

DEFAULT_RESULTS_DIR = "results"
DEFAULT_CURRENT = "results/current.bench.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run, list and trend this repo's benchmark registry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered benchmarks")
    p_list.add_argument("--tag", help="only benchmarks carrying this tag")

    p_run = sub.add_parser("run", help="run benchmarks, write normalized records")
    p_run.add_argument("names", nargs="+", metavar="NAME",
                       help="registered benchmark names (see 'list')")
    p_run.add_argument("--scale", type=float, default=None,
                       help="volumetric fraction of the paper workload "
                            "(default: per-benchmark)")
    p_run.add_argument("--threads", default="1,2",
                       help="comma-separated thread counts (default: 1,2)")
    p_run.add_argument("--repeats", type=int, default=None,
                       help="timed repetitions per point (default: per-benchmark)")
    p_run.add_argument("--rng", type=int, default=0, help="random seed")
    p_run.add_argument("--out", default=DEFAULT_CURRENT,
                       help=f"results file to write (default: {DEFAULT_CURRENT})")
    p_run.add_argument("--root-summary", action="store_true",
                       help="also write one repo-root BENCH_<suite>.json "
                            "envelope per benchmark")

    p_trend = sub.add_parser(
        "trend", help="diff a current run against committed history")
    p_trend.add_argument("--results", default=DEFAULT_RESULTS_DIR,
                         help="history directory (default: results)")
    p_trend.add_argument("--current", default=DEFAULT_CURRENT,
                         help="current-run results file to evaluate "
                              f"(default: {DEFAULT_CURRENT})")
    p_trend.add_argument("--baseline", choices=("best", "latest"),
                         default="best", help="baseline policy (default: best)")
    p_trend.add_argument("--tolerance", type=float,
                         default=trend_mod.DEFAULT_TOLERANCE,
                         help="relative slowdown tolerated before failing "
                              "(default: %(default)s)")
    p_trend.add_argument("--abs-floor", type=float,
                         default=trend_mod.DEFAULT_ABS_FLOOR_S,
                         help="absolute seconds below which differences are "
                              "noise (default: %(default)s)")
    p_trend.add_argument("--json", dest="json_out", default=None,
                         help="also write the report as JSON to this path")
    p_trend.add_argument("--chart", action="store_true",
                         help="render a terminal ratio chart of the diffs")

    p_mig = sub.add_parser(
        "migrate", help="convert legacy BENCH_*.json into normalized files")
    p_mig.add_argument("--results", default=DEFAULT_RESULTS_DIR,
                       help="directory holding the legacy files")
    p_mig.add_argument("--keep-legacy", action="store_true",
                       help="leave the originals in place instead of moving "
                            "them to results/archive/")
    return parser


def _cmd_list(args) -> int:
    specs = list_specs(tag=args.tag)
    if not specs:
        print("no benchmarks registered" +
              (f" with tag {args.tag!r}" if args.tag else ""))
        return 1
    width = max(len(s.name) for s in specs)
    for spec in specs:
        tags = f"  [{', '.join(spec.tags)}]" if spec.tags else ""
        print(f"{spec.name.ljust(width)}  scale={spec.default_scale:<6g}"
              f" repeats={spec.default_repeats}  {spec.title}{tags}")
    return 0


def _cmd_run(args) -> int:
    threads = tuple(int(t) for t in str(args.threads).split(",") if t.strip())
    for name in args.names:
        get_spec(name)  # fail on unknown names before running anything
    records: list[dict] = []
    for name in args.names:
        spec = get_spec(name)
        scale = spec.default_scale if args.scale is None else args.scale
        print(f"running {name} (scale={scale:g}, threads={threads}) ...",
              flush=True)
        records.extend(run_benchmark(
            name, scale=args.scale, threads=threads,
            repeats=args.repeats, rng=args.rng,
        ))
    path = write_results(args.out, records, meta={
        "benchmarks": list(args.names),
        "invocation": "repro-bench run",
        "host_class": host_class(),
    })
    print(f"{len(records)} record(s) -> {path}")
    if args.root_summary:
        for name in args.names:
            summary = [r for r in records if r["benchmark"] == name]
            summary_path = write_results(f"BENCH_{name}.json", summary, meta={
                "benchmarks": [name],
                "invocation": "repro-bench run --root-summary",
                "host_class": host_class(),
            })
            print(f"{len(summary)} record(s) -> {summary_path}")
    for record in records:
        timing = record["timing"]
        print(f"  {record['benchmark']}:{record['case']}  "
              f"median={timing['median_s']:.6g}s")
    return 0


def _cmd_trend(args) -> int:
    try:
        current = load_results(args.current)
    except FileNotFoundError:
        print(f"no current run at {args.current!r} — "
              "run 'repro-bench run <name>' first", file=sys.stderr)
        return 2
    except SchemaError as exc:
        print(f"current run unreadable: {exc}", file=sys.stderr)
        return 2
    result = trend_mod.evaluate(
        current,
        args.results,
        exclude_files=(args.current,),
        tolerance=args.tolerance,
        abs_floor_s=args.abs_floor,
        baseline=args.baseline,
    )
    print(f"host-class: {host_class()}")
    trend_mod.render_text(result)
    if args.chart:
        from repro.bench.plot import ratio_chart

        ratios = {
            f"{c.benchmark}:{c.case}": c.ratio
            for c in result.comparisons if c.ratio is not None
        }
        if ratios:
            print()
            print(ratio_chart("current / baseline (median)", ratios))
    if args.json_out:
        trend_mod.save_json(result, args.json_out)
        print(f"JSON report -> {args.json_out}")
    return result.exit_code


def _cmd_migrate(args) -> int:
    written = migrate_results(args.results, archive=not args.keep_legacy)
    if not written:
        print(f"nothing to migrate under {args.results!r}")
        return 0
    for path in written:
        print(f"wrote {path} ({len(load_results(path))} records)")
    if not args.keep_legacy:
        print(f"legacy originals moved to {args.results}/archive/")
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "trend": _cmd_trend,
    "migrate": _cmd_migrate,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyError as exc:
        # get_spec's unknown-benchmark error carries the available names
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    except SchemaError as exc:
        print(f"schema error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
