"""Registered benchmark suites: the registry's name → runner bindings.

Each runner measures a bounded, representative set of points for its
benchmark at the requested ``scale`` (volumetric fraction of the paper
workload) and returns normalized schema records.  Exhaustive sweeps
remain available through the figure drivers
(``python -m repro.bench.figures``) and the pytest-benchmark suite under
``benchmarks/``; the registry's job is a *stable, comparable* set of
cases the trend tracker can diff across PRs.

Case ids are contract: ``repro.bench.trend`` matches history on
``(benchmark, case, host_class)``, so renaming a case silently orphans
its baselines.  Add cases freely; rename them only with a migration.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import (
    run_cpals_point,
    run_krp_point,
    run_mttkrp_point,
    run_stream_point,
)
from repro.bench.registry import measure_case, register
from repro.bench.schema import record_from_point
from repro.data.fmri import synthetic_fmri
from repro.data.workloads import (
    FIG4_WORKLOADS,
    FIG5_WORKLOADS,
    FIG7_RANKS,
    FMRI_PAPER_4D,
    FMRI_REDUCED_4D,
    scaled_shape,
)
from repro.tensor.generate import random_factors, random_tensor

__all__: list[str] = []


def _mttkrp_algorithms(N: int, n: int) -> list[str]:
    algos = ["onestep"]
    if 0 < n < N - 1:
        algos.append("twostep")
    algos.append("gemm-baseline")
    return algos


# --------------------------------------------------------------------- #
# Paper figures
# --------------------------------------------------------------------- #


@register(
    "fig4",
    title="Figure 4: KRP reuse vs naive vs STREAM",
    tags=("figure", "krp"),
    default_scale=0.01,
)
def _run_fig4(scale, threads, repeats, rng):
    records = []
    for wl in FIG4_WORKLOADS:
        dims = wl.dims(scale)
        gen = np.random.default_rng(rng)
        mats = [gen.random((d, wl.C)) for d in dims]
        rows_total = int(np.prod([m.shape[0] for m in mats]))
        for T in threads:
            for schedule in ("reuse", "naive"):
                point = run_krp_point(mats, T, schedule, repeats)
                records.append(record_from_point(
                    "fig4",
                    f"Z{wl.Z}-C{wl.C}/{schedule}/T{T}",
                    point,
                    params={"Z": wl.Z, "C": wl.C, "rows": rows_total,
                            "threads": T, "schedule": schedule},
                ))
            stream = run_stream_point(rows_total, wl.C, T, repeats)
            records.append(record_from_point(
                "fig4",
                f"Z{wl.Z}-C{wl.C}/stream/T{T}",
                stream,
                params={"Z": wl.Z, "C": wl.C, "rows": rows_total,
                        "threads": T, "schedule": "stream"},
            ))
    return records


def _fig5_modes(N: int) -> list[int]:
    """One external plus one internal representative mode."""
    internal = N // 2 if 0 < N // 2 < N - 1 else (1 if N > 2 else 0)
    return sorted({0, internal})


@register(
    "fig5",
    title="Figure 5: MTTKRP 1-step/2-step/baseline vs threads",
    tags=("figure", "mttkrp"),
    default_scale=0.005,
)
def _run_fig5(scale, threads, repeats, rng):
    records = []
    for wl in FIG5_WORKLOADS:
        shape = wl.shape(scale)
        X = random_tensor(shape, rng=rng)
        U = random_factors(shape, wl.C, rng=rng + 1)
        for n in _fig5_modes(wl.N):
            for algo in _mttkrp_algorithms(wl.N, n):
                for T in threads:
                    point = run_mttkrp_point(X, U, n, algo, T, repeats)
                    records.append(record_from_point(
                        "fig5",
                        f"N{wl.N}/n{n}/{algo}/T{T}",
                        point,
                        params={"N": wl.N, "shape": list(shape),
                                "C": wl.C, "mode": n, "algorithm": algo,
                                "threads": T},
                    ))
    return records


def _breakdown_records(bench_id, shapes_and_names, C, threads, repeats, rng):
    records = []
    for shape, name in shapes_and_names:
        X = random_tensor(shape, rng=rng)
        U = random_factors(shape, C, rng=rng + 1)
        for n in range(len(shape)):
            for algo in _mttkrp_algorithms(len(shape), n):
                for T in threads:
                    point = run_mttkrp_point(X, U, n, algo, T, repeats)
                    records.append(record_from_point(
                        bench_id,
                        f"{name}/n{n}/{algo}/T{T}",
                        point,
                        params={"workload": name, "shape": list(shape),
                                "C": C, "mode": n, "algorithm": algo,
                                "threads": T},
                    ))
    return records


@register(
    "fig6",
    title="Figure 6: MTTKRP phase breakdown, N=3..6",
    tags=("figure", "mttkrp", "breakdown"),
    default_scale=0.002,
)
def _run_fig6(scale, threads, repeats, rng):
    shapes = [(wl.shape(scale), f"N{wl.N}") for wl in FIG5_WORKLOADS]
    return _breakdown_records("fig6", shapes, 25, threads, repeats, rng)


def _fmri_shapes(paper: bool) -> list[tuple[tuple[int, ...], str]]:
    dims = FMRI_PAPER_4D if paper else FMRI_REDUCED_4D
    t, s, r, _ = dims
    pairs = r * (r - 1) // 2
    return [((t, s, pairs), "3D"), (dims, "4D")]


@register(
    "fig7",
    title="Figure 7: CP-ALS per-iteration time vs TTB reference",
    tags=("figure", "cpals"),
    default_scale=0.1,
)
def _run_fig7(scale, threads, repeats, rng):
    t, s, r, _ = FMRI_PAPER_4D if scale >= 1.0 else FMRI_REDUCED_4D
    data = synthetic_fmri(t, s, r, rank=5, rng=rng)
    tensors = [(data.to_3way(), "3D"), (data.tensor, "4D")]
    ranks = (min(FIG7_RANKS), max(FIG7_RANKS))
    records = []
    for X, kind in tensors:
        for rank in ranks:
            for impl in ("repro", "dimtree", "ttb"):
                for T in threads:
                    point = run_cpals_point(
                        X, rank, impl, T, iterations=max(repeats, 2), rng=rng
                    )
                    records.append(record_from_point(
                        "fig7",
                        f"{kind}/C{rank}/{impl}/T{T}",
                        point,
                        params={"tensor": kind, "shape": list(X.shape),
                                "rank": rank, "implementation": impl,
                                "threads": T},
                    ))
    return records


@register(
    "fig8",
    title="Figure 8: MTTKRP phase breakdown on the fMRI tensors",
    tags=("figure", "mttkrp", "breakdown"),
    default_scale=0.1,
)
def _run_fig8(scale, threads, repeats, rng):
    return _breakdown_records(
        "fig8", _fmri_shapes(paper=scale >= 1.0), 25, threads, repeats, rng
    )


# --------------------------------------------------------------------- #
# Dimension tree (PR 4)
# --------------------------------------------------------------------- #


@register(
    "dimtree",
    title="Dimension-tree CP-ALS vs per-mode; batched vs column-wise node MTTKRP",
    tags=("cpals", "dimtree"),
    default_scale=0.1,
)
def _run_dimtree(scale, threads, repeats, rng):
    from repro.core.dimtree import (
        left_partial,
        node_mttkrp,
        node_mttkrp_columnwise,
        split_point,
    )
    from repro.cpd.cp_als import cp_als
    from repro.parallel.workspace import Workspace

    rank = 20
    t, s, r, _ = FMRI_PAPER_4D if scale >= 1.0 else FMRI_REDUCED_4D
    data = synthetic_fmri(t, s, r, rank=5, rng=rng)
    tensors = [(data.to_3way(), "3D"), (data.tensor, "4D")]
    records = []
    for X, kind in tensors:
        init = random_factors(X.shape, rank, rng=rng + 1)
        for strategy in ("per-mode", "dimtree"):
            for T in threads:
                def one_iteration(X=X, init=init, T=T, strategy=strategy):
                    cp_als(X, rank, n_iter_max=1, tol=0.0, init=init,
                           num_threads=T, mode_strategy=strategy)

                records.append(measure_case(
                    "dimtree",
                    f"cpals-{kind}/{strategy}/T{T}",
                    one_iteration,
                    params={"tensor": kind, "shape": list(X.shape),
                            "rank": rank, "strategy": strategy, "threads": T},
                    repeats=repeats,
                ))
    # Second level in isolation: one warm left-partial node of the 4-way.
    X4 = data.tensor
    m = split_point(X4.ndim)
    factors = random_factors(X4.shape, rank, rng=rng + 2)
    node = left_partial(X4, factors, m, num_threads=1)
    facs = factors[:m]
    records.append(measure_case(
        "dimtree", "node/columnwise",
        lambda: node_mttkrp_columnwise(node, facs, 0),
        params={"shape": list(node.shape), "rank": rank,
                "implementation": "columnwise", "threads": 1},
        repeats=repeats,
    ))
    with Workspace() as ws:
        records.append(measure_case(
            "dimtree", "node/batched",
            lambda: node_mttkrp(node, facs, 0, num_threads=1, workspace=ws),
            params={"shape": list(node.shape), "rank": rank,
                    "implementation": "batched", "threads": 1},
            repeats=repeats,
        ))
    return records


# --------------------------------------------------------------------- #
# Autotuner economics (PR 5)
# --------------------------------------------------------------------- #


@register(
    "autotune",
    title="Autotuner economics: cold tuning cost, warm hit, policy vs pick",
    tags=("tune",),
    default_scale=1.0,
)
def _run_autotune(scale, threads, repeats, rng):
    from repro.core.dispatch import mttkrp
    from repro.tune import TuningCache, autotune

    shape = scaled_shape((48, 32, 24), scale)
    rank = 16
    T = max(threads)
    X = random_tensor(shape, rng=rng)
    U = random_factors(shape, rank, rng=rng + 1)
    records = []

    def cold():
        cache = TuningCache(None)  # fresh every round: always a miss
        autotune(X, U, 1, num_threads=T, cache=cache, repeats=1)

    records.append(measure_case(
        "autotune", "cold",
        cold,
        params={"shape": list(shape), "rank": rank, "threads": T},
        repeats=repeats,
    ))

    warm_cache = TuningCache(None)
    pick = autotune(X, U, 1, num_threads=T, cache=warm_cache, repeats=1)
    records.append(measure_case(
        "autotune", "warm",
        lambda: autotune(X, U, 1, num_threads=T, cache=warm_cache),
        params={"shape": list(shape), "rank": rank, "threads": T,
                "pick": pick.label},
        repeats=repeats,
    ))

    for method in ("auto", "autotune"):
        if method == "autotune":
            mttkrp(X, U, 1, method="autotune", num_threads=T)  # warm the cache
        records.append(measure_case(
            "autotune", f"policy/{method}",
            lambda method=method: mttkrp(X, U, 1, method=method, num_threads=T),
            params={"shape": list(shape), "rank": rank, "threads": T,
                    "method": method},
            repeats=repeats,
        ))
    return records


# --------------------------------------------------------------------- #
# Cache-blocked MTTKRP (PR 7)
# --------------------------------------------------------------------- #


@register(
    "blocked",
    title="Cache-blocked MTTKRP vs 1-step: achieved bytes vs BRK lower bound",
    tags=("mttkrp", "blocked"),
    default_scale=1.0,
)
def _run_blocked(scale, threads, repeats, rng):
    from repro.core.dispatch import mttkrp

    shape = scaled_shape((36, 30, 24), scale)
    rank = 16
    X = random_tensor(shape, rng=rng)
    U = random_factors(shape, rank, rng=rng + 1)
    records = []
    for n in (0, 1):  # one external + one internal mode
        for method in ("blocked", "onestep"):
            for T in threads:
                record = measure_case(
                    "blocked",
                    f"n{n}/{method}/T{T}",
                    lambda n=n, method=method, T=T: mttkrp(
                        X, U, n, method=method, num_threads=T
                    ),
                    params={"shape": list(shape), "rank": rank,
                            "mode": n, "method": method, "threads": T},
                    repeats=repeats,
                )
                counters = record.get("counters", {})
                bound = counters.get("bytes_lower_bound", 0.0)
                if bound > 0:
                    achieved = counters.get("bytes_read", 0.0) + counters.get(
                        "bytes_written", 0.0
                    )
                    counters["bound_ratio"] = achieved / bound
                records.append(record)
    return records


# --------------------------------------------------------------------- #
# Parallel-runtime substrate (PR 2)
# --------------------------------------------------------------------- #


@register(
    "pool-overhead",
    title="Pool/backend substrate: region launch, reduction, backend costs",
    tags=("parallel",),
    default_scale=1.0,
    default_repeats=5,
)
def _run_pool_overhead(scale, threads, repeats, rng):
    from repro.core.krp_parallel import khatri_rao_parallel
    from repro.parallel.backend import get_executor
    from repro.parallel.pool import get_pool
    from repro.parallel.reduction import allocate_private, parallel_reduce

    records = []
    multi = [t for t in threads if t > 1] or [2]
    for T in multi:
        pool = get_pool(T)
        records.append(measure_case(
            "pool-overhead", f"region-launch/T{T}",
            lambda pool=pool, T=T: pool.parallel_for(lambda t, a, b: None, T),
            params={"threads": T}, repeats=repeats,
        ))
        buffers = allocate_private(T, (256, 25))

        def reduce_kernel(buffers=buffers, pool=pool):
            buffers[:] = 1.0
            parallel_reduce(buffers, pool)

        records.append(measure_case(
            "pool-overhead", f"reduce/T{T}",
            reduce_kernel,
            params={"threads": T, "buffer": [256, 25]}, repeats=repeats,
        ))
    T = max(multi)
    gen = np.random.default_rng(rng)
    mats = [gen.standard_normal((48, 16)) for _ in range(3)]
    for backend in ("thread", "process"):
        ex = get_executor(T, backend=backend)
        records.append(measure_case(
            "pool-overhead", f"backend-region/{backend}/T{T}",
            lambda ex=ex: ex.parallel_for(_noop_kernel, T),
            params={"backend": backend, "threads": T}, repeats=repeats,
        ))
        records.append(measure_case(
            "pool-overhead", f"backend-krp/{backend}/T{T}",
            lambda ex=ex: khatri_rao_parallel(mats, executor=ex),
            params={"backend": backend, "threads": T, "Z": 3, "C": 16},
            repeats=repeats,
        ))
    return records


def _noop_kernel(worker, start, stop):
    pass


# --------------------------------------------------------------------- #
# Design ablations
# --------------------------------------------------------------------- #


@register(
    "ablations",
    title="Design ablations: 2-step side rule, 1-step KRP streaming, "
          "KRP reuse depth",
    tags=("ablation",),
    default_scale=0.1,
)
def _run_ablations(scale, threads, repeats, rng):
    from repro.core.krp_parallel import khatri_rao_parallel
    from repro.core.mttkrp_baseline import mttkrp_baseline
    from repro.core.mttkrp_onestep import (
        mttkrp_onestep,
        mttkrp_onestep_sequential,
    )
    from repro.core.mttkrp_twostep import choose_side, mttkrp_twostep

    records = []
    skewed = scaled_shape((40, 80, 400), 25 * scale * 0.004)
    X = random_tensor(skewed, rng=rng)
    U = random_factors(skewed, 16, rng=rng + 1)
    rule = choose_side(skewed, 1)
    for side in ("auto", "left", "right"):
        records.append(measure_case(
            "ablations", f"twostep-side/{side}",
            lambda side=side: mttkrp_twostep(X, U, 1, side=side, num_threads=1),
            params={"shape": list(skewed), "rank": 16, "side": side,
                    "rule_choice": rule, "threads": 1},
            repeats=repeats,
        ))
    # Sequential-variant ablation at T=1: the straightforward baseline
    # (explicit reorder + full KRP), Algorithm 2 ("onestep-seq",
    # materializing the full KRP), and Algorithm 3 ("onestep", streaming
    # KRP blocks) — the paper's motivation for the 1-step reformulation.
    seq_variants = {
        "baseline": lambda: mttkrp_baseline(X, U, 1, num_threads=1),
        "onestep-seq": lambda: mttkrp_onestep_sequential(X, U, 1),
        "onestep": lambda: mttkrp_onestep(X, U, 1, num_threads=1),
    }
    for method, run in seq_variants.items():
        records.append(measure_case(
            "ablations", f"seq-variant/{method}",
            run,
            params={"shape": list(skewed), "rank": 16, "method": method,
                    "threads": 1},
            repeats=repeats,
        ))
    rows = max(int(2e7 * scale * 0.004), 16)
    d = max(int(round(rows ** 0.25)), 2)
    gen = np.random.default_rng(rng + 2)
    mats = [gen.random((d, 25)) for _ in range(4)]
    for schedule in ("reuse", "naive"):
        records.append(measure_case(
            "ablations", f"krp-depth4/{schedule}",
            lambda schedule=schedule: khatri_rao_parallel(
                mats, num_threads=1, schedule=schedule),
            params={"Z": 4, "C": 25, "rows": d ** 4, "schedule": schedule,
                    "threads": 1},
            repeats=repeats,
        ))
    return records


# --------------------------------------------------------------------- #
# Batched small-tensor engine (PR 9)
# --------------------------------------------------------------------- #


@register(
    "batch",
    title="Batched fleet engine: stacked MTTKRP vs per-item loop, fleet CP-ALS",
    tags=("mttkrp", "cpals", "batch"),
    default_scale=1.0,
)
def _run_batch(scale, threads, repeats, rng):
    """Fleet cases at B in {16, 64, 256} (scaled) over one small shape.

    The ``per-item`` case is the pre-batching baseline — ``B`` separate
    dispatch calls — so the stacked/per-item ratio is the amortization
    the engine exists to deliver.
    """
    from repro.batch import BatchedTensor, cp_als_batched, mttkrp_batched
    from repro.core.dispatch import mttkrp
    from repro.parallel.workspace import Workspace
    from repro.util import prod

    shape, rank, mode = (10, 9, 8), 8, 1
    gen = np.random.default_rng(rng)
    records = []
    sizes = sorted({max(int(round(b * scale)), 2) for b in (16, 64, 256)})
    T = max(threads)
    for B in sizes:
        bt = BatchedTensor(gen.standard_normal((B, prod(shape))), shape)
        factors = [gen.standard_normal((B, s, rank)) for s in shape]
        items = [bt.item(b) for b in range(B)]
        item_factors = [[f[b] for f in factors] for b in range(B)]
        with Workspace() as ws:
            for method in ("batched", "batched-loop"):
                records.append(measure_case(
                    "batch", f"mttkrp/B{B}/{method}",
                    lambda method=method, bt=bt, factors=factors, ws=ws:
                        mttkrp_batched(
                            bt, factors, mode, method=method, workspace=ws
                        ),
                    params={"shape": list(shape), "rank": rank,
                            "mode": mode, "batch": B, "method": method,
                            "threads": 1},
                    repeats=repeats,
                ))

        def per_item_loop(items=items, item_factors=item_factors):
            for X, U in zip(items, item_factors):
                mttkrp(X, U, mode, method="onestep", num_threads=1)

        records.append(measure_case(
            "batch", f"mttkrp/B{B}/per-item",
            per_item_loop,
            params={"shape": list(shape), "rank": rank, "mode": mode,
                    "batch": B, "method": "per-item", "threads": 1},
            repeats=repeats,
        ))

    # Fleet CP-ALS throughput: decompositions per second at a fixed
    # sweep count (tol<=0 disables early stopping so every item does
    # identical work).
    B = sizes[-1]
    bt = BatchedTensor(gen.standard_normal((B, prod(shape))), shape)
    iters = 5
    record = measure_case(
        "batch", f"cpals/B{B}",
        lambda bt=bt: cp_als_batched(
            bt, rank, n_iter_max=iters, tol=-1.0,
            rng=np.random.default_rng(0), num_threads=T,
        ),
        params={"shape": list(shape), "rank": rank, "batch": B,
                "iterations": iters, "threads": T},
        repeats=max(repeats, 2),
    )
    seconds = record["timing"]["min_s"]
    if seconds > 0:
        record.setdefault("counters", {})["decompositions_per_second"] = (
            B / seconds
        )
    records.append(record)
    return records


# --------------------------------------------------------------------- #
# Decomposition service (PR 10)
# --------------------------------------------------------------------- #


@register(
    "serve",
    title="Decomposition service: job throughput and latency, solo vs "
          "coalesced",
    tags=("serve", "cpals", "batch"),
    default_scale=1.0,
    default_repeats=3,
)
def _run_serve(scale, threads, repeats, rng):
    """Burst-of-jobs cases through a live :class:`JobServer`.

    Each case submits one burst of identical-class tiny jobs and waits
    for every result, once with the coalescing scheduler off (``solo`` —
    every job is its own dispatch) and once on (``coalesced`` — the
    burst rides few fleet invocations).  The measured quantity is the
    full service path: admission, queueing, dispatch, worker compute,
    result marshalling.  Counters carry jobs/s plus the server's own
    wait/run latency percentiles, and the burst size doubles as the
    experienced queue depth (``params["burst"]``).
    """
    from repro.serve import JobServer, JobSpec, ServeConfig
    from repro.tensor.dense import DenseTensor

    shape, rank, iters = (6, 5, 4), 4, 3
    gen = np.random.default_rng(rng)
    bursts = sorted({max(int(round(b * scale)), 2) for b in (8, 32)})
    records = []
    for burst in bursts:
        tensors = [
            DenseTensor(gen.standard_normal(shape)) for _ in range(burst)
        ]
        for mode, batching in (("solo", False), ("coalesced", True)):
            with JobServer(ServeConfig(
                workers=2, queue_depth=burst + 1, batching=batching,
                batch_limit=burst, progress_every=0,
            )) as server:

                def one_burst(server=server, tensors=tensors):
                    handles = [
                        server.submit(JobSpec(
                            rank=rank, tensor=t, seed=i, n_iter_max=iters,
                            tol=-1.0,
                        ))
                        for i, t in enumerate(tensors)
                    ]
                    for handle in handles:
                        handle.result(timeout=300.0)

                record = measure_case(
                    "serve", f"burst/{mode}/B{burst}",
                    one_burst,
                    params={"shape": list(shape), "rank": rank,
                            "burst": burst, "mode": mode,
                            "iterations": iters, "workers": 2},
                    repeats=repeats,
                )
                stats = server.stats()
                seconds = record["timing"]["min_s"]
                counters = record.setdefault("counters", {})
                if seconds > 0:
                    counters["jobs_per_second"] = burst / seconds
                for key in ("wait_p50", "wait_p99", "run_p50", "run_p99"):
                    counters[key] = stats[key]
                counters["coalesced_jobs"] = float(stats["coalesced_jobs"])
                records.append(record)
    return records
