"""Benchmark harness: regenerates every figure of the paper's evaluation.

* :mod:`~repro.bench.timing` — robust wall timing (median-of-k) and the
  :class:`~repro.util.timing.PhaseTimer` re-export;
* :mod:`~repro.bench.stream` — the STREAM scale benchmark of Figure 4;
* :mod:`~repro.bench.harness` — measured experiment runners (KRP, MTTKRP,
  CP-ALS) producing structured results;
* :mod:`~repro.bench.figures` — per-figure drivers printing paper-style
  tables for both the *measured* (host, reduced scale) and *modeled*
  (paper machine, paper scale) variants.  Also a CLI:
  ``python -m repro.bench.figures fig5 --scale 0.005``.
"""

from repro.bench.harness import (
    CPALSPoint,
    KRPPoint,
    MTTKRPPoint,
    run_cpals_point,
    run_krp_point,
    run_mttkrp_point,
)
from repro.bench.stream import stream_scale
from repro.bench.timing import median_time, PhaseTimer

__all__ = [
    "median_time",
    "PhaseTimer",
    "stream_scale",
    "KRPPoint",
    "MTTKRPPoint",
    "CPALSPoint",
    "run_krp_point",
    "run_mttkrp_point",
    "run_cpals_point",
]
