"""Benchmark harness: registry, normalized results, regression trends.

* :mod:`~repro.bench.registry` — name → :class:`BenchSpec` registry of
  every runnable benchmark (fig4–fig8, dimtree, autotune, pool-overhead,
  ablations); ``run_benchmark`` executes any of them at a chosen scale;
* :mod:`~repro.bench.schema` — the one normalized result record every
  producer emits (timing stats + obs counters + host fingerprint + git
  rev), with validating writer/loader for ``results/*.bench.json``;
* :mod:`~repro.bench.env` — host fingerprint / host-class / provenance
  headers shared by every result producer;
* :mod:`~repro.bench.trend` — cross-PR regression tracker diffing a run
  against the committed history, tolerance-aware, fails loudly;
* :mod:`~repro.bench.cli` — the ``repro-bench`` CLI (also
  ``python -m repro.bench``): ``list`` / ``run`` / ``trend`` / ``migrate``;
* :mod:`~repro.bench.timing` — robust wall timing (median-of-k, raw
  samples) and the :class:`~repro.util.timing.PhaseTimer` re-export;
* :mod:`~repro.bench.stream` — the STREAM scale benchmark of Figure 4;
* :mod:`~repro.bench.harness` — measured experiment runners (KRP, MTTKRP,
  CP-ALS) producing structured points with timing stats and obs counters;
* :mod:`~repro.bench.figures` — per-figure drivers printing paper-style
  tables for both the *measured* (host, reduced scale) and *modeled*
  (paper machine, paper scale) variants:
  ``python -m repro.bench.figures fig5 --scale 0.005``.
"""

from repro.bench.env import host_class, host_fingerprint, provenance_header
from repro.bench.harness import (
    CPALSPoint,
    KRPPoint,
    MTTKRPPoint,
    run_cpals_point,
    run_krp_point,
    run_mttkrp_point,
)
from repro.bench.registry import (
    BenchSpec,
    benchmark_names,
    get_spec,
    list_specs,
    measure_case,
    run_benchmark,
)
from repro.bench.schema import (
    SCHEMA_VERSION,
    SchemaError,
    load_history,
    load_results,
    new_record,
    record_from_point,
    validate_record,
    write_results,
)
from repro.bench.stream import stream_scale
from repro.bench.timing import PhaseTimer, median_time, time_samples

__all__ = [
    "median_time",
    "time_samples",
    "PhaseTimer",
    "stream_scale",
    "KRPPoint",
    "MTTKRPPoint",
    "CPALSPoint",
    "run_krp_point",
    "run_mttkrp_point",
    "run_cpals_point",
    "host_fingerprint",
    "host_class",
    "provenance_header",
    "BenchSpec",
    "benchmark_names",
    "get_spec",
    "list_specs",
    "run_benchmark",
    "measure_case",
    "SCHEMA_VERSION",
    "SchemaError",
    "new_record",
    "record_from_point",
    "validate_record",
    "write_results",
    "load_results",
    "load_history",
]
