"""Measured experiment runners for the figure drivers and the registry.

Each ``run_*_point`` function measures one point of one figure (a specific
algorithm / workload / thread count) and returns a small result record;
the figure drivers in :mod:`repro.bench.figures` assemble those into the
paper's tables, and the registry runners in :mod:`repro.bench.suites`
convert them into normalized schema records.  All runners accept
preconstructed inputs where reuse matters so repeated timings measure the
kernel, not setup.

Since the registry refactor every point carries, beyond the headline
``seconds``:

* ``stats`` — the full timing distribution (mean/median/min/max/std over
  the repeats), feeding ``timing`` in the normalized schema;
* ``counters`` — analytic FLOP/byte totals, GEMM/GEMV call counts and
  per-region load imbalance captured by running one instrumented
  repetition under a private :func:`repro.obs.capture` tracer (the
  measured repetitions themselves stay untraced, so instrumentation
  cannot skew the timings).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.bench.stream import stream_buffers, stream_scale
from repro.bench.timing import time_samples
from repro.core.dispatch import mttkrp
from repro.core.krp_parallel import khatri_rao_parallel
from repro.core.mttkrp_baseline import mttkrp_gemm_lower_bound
from repro.cpd.cp_als import cp_als
from repro.reference.tensor_toolbox import cp_als_ttb
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import random_factors
from repro.util import prod
from repro.util.timing import PhaseTimer

__all__ = [
    "KRPPoint",
    "MTTKRPPoint",
    "CPALSPoint",
    "run_krp_point",
    "run_stream_point",
    "run_mttkrp_point",
    "run_cpals_point",
]


def _stats_from_samples(samples: Sequence[float]) -> dict:
    from repro.bench.schema import timing_from_stats

    return timing_from_stats(samples)


def _captured_counters(fn: Callable[[], object]) -> dict[str, float]:
    """Counters from one instrumented invocation of ``fn``."""
    with obs.capture() as tracer:
        fn()
    return obs.counters_snapshot(tracer)


@dataclass(frozen=True)
class KRPPoint:
    """One measured Figure 4 point."""

    schedule: str  # "reuse" | "naive" | "stream"
    Z: int
    C: int
    rows: int
    threads: int
    seconds: float
    stats: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)


@dataclass(frozen=True)
class MTTKRPPoint:
    """One measured Figure 5/6/8 point."""

    algorithm: str
    shape: tuple[int, ...]
    mode: int
    C: int
    threads: int
    seconds: float
    phases: dict[str, float] = field(default_factory=dict)
    stats: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CPALSPoint:
    """One measured Figure 7 point (per-iteration CP-ALS time)."""

    implementation: str  # "repro" | "dimtree" | "ttb"
    shape: tuple[int, ...]
    rank: int
    threads: int
    seconds_per_iteration: float
    final_fit: float
    stats: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)


def run_krp_point(
    matrices: Sequence[np.ndarray],
    threads: int,
    schedule: str = "reuse",
    repeats: int = 3,
) -> KRPPoint:
    """Measure one parallel-KRP configuration (Figure 4 protocol)."""
    mats = [np.asarray(m) for m in matrices]
    C = mats[0].shape[1]
    rows = prod(m.shape[0] for m in mats)
    out = np.empty((rows, C))

    def kernel() -> None:
        khatri_rao_parallel(mats, num_threads=threads, out=out, schedule=schedule)

    samples = time_samples(kernel, repeats=repeats)
    return KRPPoint(
        schedule=schedule,
        Z=len(mats),
        C=C,
        rows=rows,
        threads=threads,
        seconds=float(np.mean(samples)),
        stats=_stats_from_samples(samples),
        counters=_captured_counters(kernel),
    )


def run_stream_point(entries: int, C: int, threads: int, repeats: int = 3) -> KRPPoint:
    """Measure the STREAM scale kernel at the KRP output size."""
    src, dst = stream_buffers(int(entries) * int(C))

    def kernel() -> None:
        stream_scale(src, dst, num_threads=threads)

    samples = time_samples(kernel, repeats=repeats)
    return KRPPoint(
        schedule="stream",
        Z=0,
        C=C,
        rows=int(entries),
        threads=threads,
        seconds=float(np.mean(samples)),
        stats=_stats_from_samples(samples),
        counters=_captured_counters(kernel),
    )


def run_mttkrp_point(
    tensor: DenseTensor,
    factors: Sequence[np.ndarray],
    mode: int,
    algorithm: str,
    threads: int,
    repeats: int = 3,
) -> MTTKRPPoint:
    """Measure one MTTKRP configuration (Figure 5 protocol: median of k).

    The phase breakdown and obs counters of one extra instrumented
    repetition are attached (Figure 6/8); the timed repetitions run
    untraced.
    """
    C = np.asarray(factors[0]).shape[1]
    scratch: dict = {}

    if algorithm == "gemm-baseline":

        def kernel() -> None:
            mttkrp_gemm_lower_bound(
                tensor, factors, mode, num_threads=threads, _scratch=scratch
            )

        def instrumented(timer: PhaseTimer) -> None:
            mttkrp_gemm_lower_bound(
                tensor, factors, mode, num_threads=threads,
                timers=timer, _scratch=scratch,
            )
    else:

        def kernel() -> None:
            mttkrp(
                tensor, factors, mode, method=algorithm, num_threads=threads
            )

        def instrumented(timer: PhaseTimer) -> None:
            mttkrp(
                tensor, factors, mode, method=algorithm,
                num_threads=threads, timers=timer,
            )

    samples = time_samples(kernel, repeats=repeats)
    timer = PhaseTimer()
    counters = _captured_counters(lambda: instrumented(timer))
    return MTTKRPPoint(
        algorithm=algorithm,
        shape=tensor.shape,
        mode=int(mode),
        C=int(C),
        threads=int(threads),
        seconds=float(np.median(samples)),
        phases=timer.snapshot(),
        stats=_stats_from_samples(samples),
        counters=counters,
    )


def run_cpals_point(
    tensor: DenseTensor,
    rank: int,
    implementation: str,
    threads: int,
    iterations: int = 3,
    rng: int = 0,
) -> CPALSPoint:
    """Measure per-iteration CP-ALS time (Figure 7 protocol).

    Both implementations get identical random initial factors so they do
    identical arithmetic per iteration; ``tol=0``-style fixed iteration
    counts make the per-iteration average well-defined.  The whole
    measured run executes under a capture tracer, so the attached
    counters are totals over all ``iterations``.
    """
    init = random_factors(tensor.shape, rank, rng=rng)
    with obs.capture() as tracer:
        if implementation in ("repro", "dimtree"):
            res = cp_als(
                tensor,
                rank,
                n_iter_max=iterations,
                tol=0.0,
                init=init,
                num_threads=threads,
                mode_strategy=(
                    "dimtree" if implementation == "dimtree" else "per-mode"
                ),
            )
            per_iter = res.mean_iteration_time
            fit = res.final_fit
        elif implementation == "ttb":
            res = cp_als_ttb(
                tensor,
                rank,
                n_iter_max=iterations,
                tol=0.0,
                init=init,
                num_threads=threads,
            )
            per_iter = res.mean_iteration_time
            fit = res.final_fit
        else:
            raise ValueError(f"unknown implementation {implementation!r}")
    return CPALSPoint(
        implementation=implementation,
        shape=tensor.shape,
        rank=int(rank),
        threads=int(threads),
        seconds_per_iteration=per_iter,
        final_fit=fit,
        stats={
            "mean_s": float(per_iter),
            "median_s": float(per_iter),
            "repeats": int(iterations),
        },
        counters=obs.counters_snapshot(tracer),
    )
