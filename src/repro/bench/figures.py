"""Per-figure experiment drivers: regenerate every figure of the paper.

Each ``figN()`` function produces the paper's figure as text tables, in up
to two flavours:

* **measured** — actually runs the algorithms on this host at a reduced
  scale (``--scale``, volumetric fraction of the paper's workload) over
  the requested thread counts;
* **modeled** — evaluates the calibrated analytical model of the paper's
  12-core machine (:func:`repro.machine.model.paper_machine`) at the
  paper's full scale, thread counts 1..12.

Run as a CLI::

    python -m repro.bench.figures fig4 --scale 0.02
    python -m repro.bench.figures all  --scale 0.002 --threads 1 2 4
    python -m repro.bench.figures fig7 --no-measured

The EXPERIMENTS.md in the repository root records one full run of each.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Iterable, Sequence

import numpy as np

from repro.bench.harness import (
    run_cpals_point,
    run_krp_point,
    run_mttkrp_point,
    run_stream_point,
)
from repro.data.fmri import synthetic_fmri
from repro.data.workloads import (
    FIG4_WORKLOADS,
    FIG5_WORKLOADS,
    FIG7_RANKS,
    FMRI_PAPER_4D,
    FMRI_REDUCED_4D,
)
from repro.machine.model import paper_machine
from repro.machine.predict import (
    predict_algorithm_time,
    predict_krp_time,
    predict_stream_time,
)
from repro.tensor.generate import random_factors, random_tensor
from repro.util import human_count, prod

__all__ = ["fig4", "fig5", "fig6", "fig7", "fig8", "main"]

_PAPER_THREADS = (1, 2, 4, 6, 8, 10, 12)


def _fmt_row(cells: Iterable[str], widths: Sequence[int]) -> str:
    return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))


def _print_table(
    title: str, header: list[str], rows: list[list[str]], out=None
) -> None:
    out = out or sys.stdout
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    print(f"\n{title}", file=out)
    print(_fmt_row(header, widths), file=out)
    print("  ".join("-" * w for w in widths), file=out)
    for r in rows:
        print(_fmt_row(r, widths), file=out)


# --------------------------------------------------------------------- #
# Figure 4: KRP — Reuse vs Naive vs STREAM over threads
# --------------------------------------------------------------------- #


def fig4(
    scale: float = 0.01,
    threads: Sequence[int] = (1,),
    repeats: int = 3,
    measured: bool = True,
    modeled: bool = True,
    rng: int = 0,
    plot: bool = False,
    out=None,
) -> None:
    """Figure 4: time of Algorithm 1 vs naive KRP vs STREAM."""
    out = out or sys.stdout
    if measured:
        for wl in FIG4_WORKLOADS:
            dims = wl.dims(scale)
            rows_total = prod(dims)
            gen = np.random.default_rng(rng)
            mats = [gen.random((d, wl.C)) for d in dims]
            table = []
            for T in threads:
                r = run_krp_point(mats, T, "reuse", repeats)
                n = run_krp_point(mats, T, "naive", repeats)
                s = run_stream_point(rows_total, wl.C, T, repeats)
                table.append(
                    [
                        T,
                        f"{r.seconds:.4f}",
                        f"{n.seconds:.4f}",
                        f"{s.seconds:.4f}",
                        f"{n.seconds / r.seconds:.2f}x",
                    ]
                )
            _print_table(
                f"[Fig 4, measured] KRP {wl.label}, J={human_count(rows_total)} "
                f"rows (scale={scale})",
                ["T", "reuse(s)", "naive(s)", "STREAM(s)", "naive/reuse"],
                table,
                out,
            )
    if modeled:
        m = paper_machine()
        for wl in FIG4_WORKLOADS:
            dims = wl.dims(1.0)
            rows_total = prod(dims)
            table = []
            series: dict[str, list[float]] = {
                f"{wl.Z}-Reuse": [],
                f"{wl.Z}-Naive": [],
                "STREAM": [],
            }
            for T in _PAPER_THREADS:
                tr = predict_krp_time(m, dims, wl.C, T, "reuse")
                tn = predict_krp_time(m, dims, wl.C, T, "naive")
                ts = predict_stream_time(m, rows_total * wl.C, T)
                series[f"{wl.Z}-Reuse"].append(tr)
                series[f"{wl.Z}-Naive"].append(tn)
                series["STREAM"].append(ts)
                table.append(
                    [
                        T,
                        f"{tr:.3f}",
                        f"{tn:.3f}",
                        f"{ts:.3f}",
                        f"{tn / tr:.2f}x",
                    ]
                )
            _print_table(
                f"[Fig 4, modeled: paper machine] KRP {wl.label}, "
                f"J={human_count(rows_total)} rows",
                ["T", "reuse(s)", "naive(s)", "STREAM(s)", "naive/reuse"],
                table,
                out,
            )
            if plot:
                from repro.bench.plot import line_chart

                print(
                    "\n"
                    + line_chart(
                        f"Fig 4 (modeled): KRP time vs threads, {wl.label}",
                        _PAPER_THREADS,
                        series,
                    ),
                    file=out,
                )


# --------------------------------------------------------------------- #
# Figure 5: MTTKRP scaling; Figure 6: breakdown
# --------------------------------------------------------------------- #


def _mttkrp_algorithms(N: int, n: int) -> list[str]:
    algos = ["onestep"]
    if 0 < n < N - 1:
        algos.append("twostep")
    algos.append("gemm-baseline")
    return algos


def fig5(
    scale: float = 0.005,
    threads: Sequence[int] = (1,),
    repeats: int = 3,
    measured: bool = True,
    modeled: bool = True,
    rng: int = 0,
    plot: bool = False,
    out=None,
) -> None:
    """Figure 5: 1-step / 2-step / baseline MTTKRP time vs threads."""
    out = out or sys.stdout
    if measured:
        for wl in FIG5_WORKLOADS:
            shape = wl.shape(scale)
            X = random_tensor(shape, rng=rng)
            U = random_factors(shape, wl.C, rng=rng + 1)
            rows = []
            for n in range(wl.N):
                for algo in _mttkrp_algorithms(wl.N, n):
                    cells = [f"n={n}", algo]
                    for T in threads:
                        p = run_mttkrp_point(X, U, n, algo, T, repeats)
                        cells.append(f"{p.seconds:.4f}")
                    rows.append(cells)
            _print_table(
                f"[Fig 5, measured] {wl.label} scaled to shape {shape} "
                f"({human_count(prod(shape))} entries)",
                ["mode", "algorithm"] + [f"T={T}(s)" for T in threads],
                rows,
                out,
            )
    if modeled:
        m = paper_machine()
        for wl in FIG5_WORKLOADS:
            shape = wl.shape(1.0)
            rows = []
            for n in range(wl.N):
                for algo in _mttkrp_algorithms(wl.N, n):
                    cells = [f"n={n}", algo]
                    for T in _PAPER_THREADS:
                        t, _ = predict_algorithm_time(m, shape, n, wl.C, T, algo)
                        cells.append(f"{t:.3f}")
                    rows.append(cells)
            _print_table(
                f"[Fig 5, modeled: paper machine] {wl.label}",
                ["mode", "algorithm"] + [f"T={T}(s)" for T in _PAPER_THREADS],
                rows,
                out,
            )
            if plot:
                from repro.bench.plot import line_chart

                n_mid = wl.N // 2  # representative internal mode
                series = {
                    algo: [
                        predict_algorithm_time(
                            m, shape, n_mid, wl.C, T, algo
                        )[0]
                        for T in _PAPER_THREADS
                    ]
                    for algo in ("onestep", "twostep", "gemm-baseline")
                }
                print(
                    "\n"
                    + line_chart(
                        f"Fig 5 (modeled): MTTKRP time vs threads, "
                        f"{wl.label}, mode {n_mid}",
                        _PAPER_THREADS,
                        series,
                    ),
                    file=out,
                )


_PHASE_ORDER = ["reorder", "full_krp", "lr_krp", "gemm", "gemv", "reduce"]


def _phase_cells(phases: dict[str, float]) -> list[str]:
    return [
        f"{phases.get(ph, 0.0):.4f}" if ph in phases else "-"
        for ph in _PHASE_ORDER
    ]


def _breakdown_tables(
    shapes_and_names: list[tuple[tuple[int, ...], str]],
    C: int,
    threads: Sequence[int],
    repeats: int,
    measured: bool,
    modeled: bool,
    rng: int,
    figure_name: str,
    out,
    plot: bool = False,
) -> None:
    """Shared driver for Figures 6 and 8 (phase breakdowns)."""
    if measured:
        for shape, name in shapes_and_names:
            X = random_tensor(shape, rng=rng)
            U = random_factors(shape, C, rng=rng + 1)
            for T in threads:
                rows = []
                for n in range(len(shape)):
                    for algo in _mttkrp_algorithms(len(shape), n):
                        p = run_mttkrp_point(X, U, n, algo, T, repeats)
                        rows.append(
                            [f"n={n}", algo, f"{p.seconds:.4f}"]
                            + _phase_cells(p.phases)
                        )
                _print_table(
                    f"[{figure_name}, measured] {name} shape={shape}, "
                    f"C={C}, T={T}",
                    ["mode", "algorithm", "total(s)"] + _PHASE_ORDER,
                    rows,
                    out,
                )
    if modeled:
        m = paper_machine()
        for shape, name in shapes_and_names:
            for T in (1, 12):
                rows = []
                for n in range(len(shape)):
                    for algo in _mttkrp_algorithms(len(shape), n):
                        total, phases = predict_algorithm_time(
                            m, shape, n, C, T, algo
                        )
                        rows.append(
                            [f"n={n}", algo, f"{total:.3f}"]
                            + _phase_cells(phases)
                        )
                _print_table(
                    f"[{figure_name}, modeled: paper machine] {name} "
                    f"shape={shape}, C={C}, T={T}",
                    ["mode", "algorithm", "total(s)"] + _PHASE_ORDER,
                    rows,
                    out,
                )
                if plot:
                    from repro.bench.plot import stacked_bar_chart

                    bars = {}
                    for n in range(len(shape)):
                        for algo in _mttkrp_algorithms(len(shape), n):
                            _, phases = predict_algorithm_time(
                                m, shape, n, C, T, algo
                            )
                            short = {"onestep": "1S", "twostep": "2S",
                                     "gemm-baseline": "B"}[algo]
                            bars[f"n={n} {short}"] = phases
                    print(
                        "\n"
                        + stacked_bar_chart(
                            f"{figure_name} (modeled): phase breakdown, "
                            f"{name}, T={T}",
                            bars,
                        ),
                        file=sys.stdout if out is None else out,
                    )


def fig6(
    scale: float = 0.005,
    threads: Sequence[int] = (1,),
    repeats: int = 3,
    measured: bool = True,
    modeled: bool = True,
    rng: int = 0,
    plot: bool = False,
    out=None,
) -> None:
    """Figure 6: MTTKRP time breakdown across modes, N = 3..6."""
    shapes = [
        (wl.shape(scale), f"N={wl.N}") for wl in FIG5_WORKLOADS
    ]
    if modeled:
        paper_shapes = [(wl.shape(1.0), f"N={wl.N}") for wl in FIG5_WORKLOADS]
    _breakdown_tables(
        shapes, 25, threads, repeats, measured, False, rng, "Fig 6", out
    )
    if modeled:
        _breakdown_tables(
            paper_shapes, 25, threads, repeats, False, True, rng, "Fig 6",
            out, plot=plot,
        )


# --------------------------------------------------------------------- #
# Figure 7: CP-ALS per-iteration times; Figure 8: fMRI breakdown
# --------------------------------------------------------------------- #


def _fmri_shapes(scale_dims: bool) -> list[tuple[tuple[int, ...], str]]:
    dims = FMRI_REDUCED_4D if scale_dims else FMRI_PAPER_4D
    t, s, r, _ = dims
    pairs = r * (r - 1) // 2
    return [
        ((t, s, pairs), "3D fMRI"),
        (dims, "4D fMRI"),
    ]


def fig7(
    scale: float = 1.0,
    threads: Sequence[int] = (1,),
    repeats: int = 2,
    measured: bool = True,
    modeled: bool = True,
    rng: int = 0,
    plot: bool = False,
    out=None,
) -> None:
    """Figure 7: per-iteration CP-ALS time, our implementation vs the
    Tensor-Toolbox-style reference, over CP ranks.

    ``scale`` selects the measured tensor dims: < 1 uses the reduced fMRI
    dims, 1.0 the paper dims (memory permitting).
    """
    out = out or sys.stdout
    if measured:
        data = synthetic_fmri(
            *(FMRI_REDUCED_4D[:3] if scale < 1.0 else FMRI_PAPER_4D[:3]),
            rank=5,
            rng=rng,
        )
        tensors = [(data.to_3way(), "3D fMRI"), (data.tensor, "4D fMRI")]
        for X, name in tensors:
            rows = []
            for rank in FIG7_RANKS:
                cells = [rank]
                for T in threads:
                    ours = run_cpals_point(X, rank, "repro", T, repeats + 1, rng)
                    dt = run_cpals_point(
                        X, rank, "dimtree", T, repeats + 1, rng
                    )
                    ttb = run_cpals_point(X, rank, "ttb", T, repeats + 1, rng)
                    cells += [
                        f"{ours.seconds_per_iteration:.4f}",
                        f"{dt.seconds_per_iteration:.4f}",
                        f"{ttb.seconds_per_iteration:.4f}",
                        f"{ttb.seconds_per_iteration / ours.seconds_per_iteration:.2f}x",
                    ]
                rows.append(cells)
            header = ["C"]
            for T in threads:
                header += [
                    f"ours T={T}", f"dimtree T={T}", f"TTB T={T}",
                    f"speedup T={T}",
                ]
            _print_table(
                f"[Fig 7, measured] CP-ALS per-iteration seconds, {name} "
                f"shape={X.shape}",
                header,
                rows,
                out,
            )
    if modeled:
        from repro.machine.predict import predict_cpals_iteration

        m = paper_machine()
        for shape, name in _fmri_shapes(scale_dims=False):
            rows = []
            for rank in FIG7_RANKS:
                cells = [rank]
                for T in (1, 12):
                    t_ours = predict_cpals_iteration(m, shape, rank, T, "repro")
                    t_dt = predict_cpals_iteration(
                        m, shape, rank, T, "dimtree"
                    )
                    t_ttb = predict_cpals_iteration(m, shape, rank, T, "ttb")
                    cells += [
                        f"{t_ours:.3f}",
                        f"{t_dt:.3f}",
                        f"{t_ttb:.3f}",
                        f"{t_ttb / t_ours:.2f}x",
                    ]
                rows.append(cells)
            _print_table(
                f"[Fig 7, modeled: paper machine] CP-ALS per-iteration "
                f"seconds (MTTKRP portion), {name} shape={shape}",
                ["C", "ours T=1", "dimtree T=1", "TTB T=1", "speedup T=1",
                 "ours T=12", "dimtree T=12", "TTB T=12", "speedup T=12"],
                rows,
                out,
            )


def fig8(
    scale: float = 0.1,
    threads: Sequence[int] = (1,),
    repeats: int = 3,
    measured: bool = True,
    modeled: bool = True,
    rng: int = 0,
    plot: bool = False,
    out=None,
) -> None:
    """Figure 8: MTTKRP breakdown on the (synthetic) fMRI tensors."""
    measured_shapes = _fmri_shapes(scale_dims=scale < 1.0)
    _breakdown_tables(
        measured_shapes, 25, threads, repeats, measured, False, rng,
        "Fig 8", out,
    )
    if modeled:
        _breakdown_tables(
            _fmri_shapes(scale_dims=False), 25, threads, repeats, False,
            True, rng, "Fig 8", out, plot=plot,
        )


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

_FIGURES = {"fig4": fig4, "fig5": fig5, "fig6": fig6, "fig7": fig7, "fig8": fig8}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.figures",
        description="Regenerate the paper's figures (measured and/or modeled).",
    )
    parser.add_argument(
        "figure", choices=sorted(_FIGURES) + ["all"], help="which figure"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.005,
        help="volumetric fraction of the paper workload for measured runs",
    )
    parser.add_argument(
        "--threads",
        type=int,
        nargs="+",
        default=[1],
        help="thread counts for measured runs",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--rng", type=int, default=0)
    parser.add_argument(
        "--no-measured", action="store_true", help="skip host measurements"
    )
    parser.add_argument(
        "--no-modeled", action="store_true", help="skip paper-machine model"
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render terminal charts for the modeled figures",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        help="also write each figure's output to DIR/<fig>.txt",
    )
    args = parser.parse_args(argv)
    names = sorted(_FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        kwargs = dict(
            scale=args.scale,
            threads=args.threads,
            repeats=args.repeats,
            measured=not args.no_measured,
            modeled=not args.no_modeled,
            rng=args.rng,
            plot=args.plot,
        )
        if args.output:
            import io
            import pathlib

            from repro.bench.env import provenance_header

            buf = io.StringIO()
            _FIGURES[name](out=buf, **kwargs)
            text = buf.getvalue()
            sys.stdout.write(text)
            directory = pathlib.Path(args.output)
            directory.mkdir(parents=True, exist_ok=True)
            header = provenance_header(
                scale=args.scale,
                threads=args.threads,
                extra={
                    "figure": name,
                    "repeats": args.repeats,
                    "rng": args.rng,
                    "measured": not args.no_measured,
                    "modeled": not args.no_modeled,
                },
            )
            (directory / f"{name}.txt").write_text(header + text)
        else:
            _FIGURES[name](**kwargs)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
