"""STREAM-style bandwidth benchmark (the reference curve in Figure 4).

The paper's STREAM variant "is based on reading, scaling, and writing a
matrix the same size as the output KRP matrix" — i.e. the STREAM *scale*
kernel ``b = alpha * a``.  :func:`stream_scale` implements exactly that,
with the same contiguous-block thread decomposition as the KRP so the two
curves are comparable.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.config import resolve_threads
from repro.parallel.pool import get_pool

__all__ = ["stream_scale", "stream_buffers"]


def stream_buffers(entries: int, dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
    """Allocate and touch source/destination buffers for :func:`stream_scale`.

    Separated from the kernel so benchmark loops can reuse allocations and
    time only the traffic.
    """
    entries = int(entries)
    if entries <= 0:
        raise ValueError(f"entries must be positive, got {entries}")
    src = np.ones(entries, dtype=dtype)
    dst = np.zeros(entries, dtype=dtype)
    return src, dst


def stream_scale(
    src: np.ndarray,
    dst: np.ndarray,
    alpha: float = 3.0,
    num_threads: int | None = None,
) -> None:
    """``dst = alpha * src`` with the KRP's contiguous-block threading.

    Parameters
    ----------
    src, dst:
        Equal-length 1-D arrays (see :func:`stream_buffers`).
    alpha:
        Scale constant (STREAM's traditional 3.0).
    num_threads:
        Thread count; 1 runs the plain vectorized kernel.
    """
    if src.shape != dst.shape or src.ndim != 1:
        raise ValueError("src and dst must be equal-length 1-D arrays")
    T = resolve_threads(num_threads)
    if T == 1:
        np.multiply(src, alpha, out=dst)
        return
    pool = get_pool(T)

    def work(t: int, start: int, stop: int) -> None:
        np.multiply(src[start:stop], alpha, out=dst[start:stop])

    pool.parallel_for(work, src.shape[0])
