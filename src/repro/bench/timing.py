"""Measurement utilities for the benchmark harness.

The paper reports the average of 100 trials for KRP (Figure 4) and the
median of 10 runs for MTTKRP (Figure 5); :func:`median_time` and
:func:`mean_time` implement both protocols with configurable repetition
counts (the reduced-scale defaults use fewer repetitions to keep the full
suite fast on one core).
"""

from __future__ import annotations

import time
from collections.abc import Callable

import numpy as np

from repro.util.timing import PhaseTimer, wall_time

__all__ = [
    "median_time",
    "mean_time",
    "time_once",
    "time_samples",
    "PhaseTimer",
    "wall_time",
]


def time_once(fn: Callable[[], object]) -> float:
    """Wall-clock seconds of a single invocation."""
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def time_samples(
    fn: Callable[[], object], repeats: int = 5, warmup: int = 1
) -> list[float]:
    """Raw per-repeat wall times after ``warmup`` runs.

    The registry's normalized records keep the full timing distribution
    (mean/median/min/max/std), so the harness measures once and derives
    every statistic from the same samples.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    for _ in range(warmup):
        fn()
    return [time_once(fn) for _ in range(repeats)]


def median_time(
    fn: Callable[[], object], repeats: int = 5, warmup: int = 1
) -> float:
    """Median wall time over ``repeats`` runs after ``warmup`` runs.

    The paper's MTTKRP protocol (median of 10); warmup runs absorb
    allocator and BLAS-thread-pool start-up effects.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    for _ in range(warmup):
        fn()
    return float(np.median([time_once(fn) for _ in range(repeats)]))


def mean_time(
    fn: Callable[[], object], repeats: int = 10, warmup: int = 1
) -> float:
    """Mean wall time over ``repeats`` runs (the paper's KRP protocol)."""
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    for _ in range(warmup):
        fn()
    return float(np.mean([time_once(fn) for _ in range(repeats)]))
