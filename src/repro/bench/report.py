"""Summarize pytest-benchmark JSON output into paper-style tables.

The benchmark suite attaches experiment metadata (figure id, workload,
algorithm, threads, phase breakdowns) to every record via
``benchmark.extra_info``.  After a run with

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json

this module (also a CLI: ``python -m repro.bench.report bench.json``)
groups the records by figure/ablation and prints per-figure comparison
tables — the machine-readable complement to ``repro.bench.figures``.

``--normalize OUT.bench.json`` additionally converts the pytest-benchmark
records into the normalized :mod:`repro.bench.schema`, so a pytest run
can feed the same ``results/`` history and :mod:`repro.bench.trend`
scoreboard as ``repro-bench run``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from collections.abc import Sequence

__all__ = ["load_records", "summarize", "normalize_records", "main"]


def load_records(path_or_dict) -> list[dict]:
    """Extract benchmark records (name, median seconds, extra_info).

    Accepts a path to a pytest-benchmark JSON file or an already-parsed
    dict with the same structure.
    """
    if isinstance(path_or_dict, dict):
        doc = path_or_dict
    else:
        with open(path_or_dict) as fh:
            doc = json.load(fh)
    records = []
    for b in doc.get("benchmarks", []):
        records.append(
            {
                "name": b.get("name", "?"),
                "median": float(b.get("stats", {}).get("median", 0.0)),
                "mean": float(b.get("stats", {}).get("mean", 0.0)),
                "extra": b.get("extra_info", {}) or {},
            }
        )
    return records


def _group_key(rec: dict) -> str:
    extra = rec["extra"]
    return extra.get("figure") or (
        f"ablation:{extra['ablation']}" if "ablation" in extra else "other"
    )


def summarize(records: Sequence[dict], out=None) -> None:
    """Print one table per figure/ablation group."""
    out = out or sys.stdout
    groups: dict[str, list[dict]] = defaultdict(list)
    for rec in records:
        groups[_group_key(rec)].append(rec)
    for group in sorted(groups):
        rows = groups[group]
        print(f"\n== {group} ({len(rows)} benchmarks) ==", file=out)
        # Columns: the union of scalar extra_info keys (stable order).
        keys: list[str] = []
        for rec in rows:
            for k, v in rec["extra"].items():
                if k in ("figure", "ablation", "phase_seconds",
                         "phase_fractions"):
                    continue
                if k not in keys:
                    keys.append(k)
        header = keys + ["median(s)"]
        widths = [len(h) for h in header]
        table = []
        for rec in sorted(
            rows, key=lambda r: tuple(str(r["extra"].get(k)) for k in keys)
        ):
            cells = [str(rec["extra"].get(k, "-")) for k in keys]
            cells.append(f"{rec['median']:.5f}")
            table.append(cells)
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        print(
            "  ".join(h.rjust(w) for h, w in zip(header, widths)), file=out
        )
        for cells in table:
            print(
                "  ".join(c.rjust(w) for c, w in zip(cells, widths)),
                file=out,
            )


def normalize_records(path_or_dict) -> list[dict]:
    """Pytest-benchmark JSON → normalized :mod:`repro.bench.schema` records.

    The benchmark id is the record's ``figure``/``ablation`` tag; the case
    is the pytest node name (stable across runs for the same parametrize
    grid).  The host fingerprint comes from the ``repro_host`` block the
    ``benchmarks/`` conftest injects into ``machine_info``, so records
    normalized later still carry the *measuring* host, not the converting
    one.
    """
    from repro.bench.schema import new_record

    if isinstance(path_or_dict, dict):
        doc = path_or_dict
    else:
        with open(path_or_dict) as fh:
            doc = json.load(fh)
    host = (doc.get("machine_info") or {}).get("repro_host")
    records = []
    for b in doc.get("benchmarks", []):
        extra = b.get("extra_info", {}) or {}
        stats = b.get("stats", {})
        benchmark_id = extra.get("figure") or extra.get("ablation") or "pytest"
        params = {
            k: v for k, v in extra.items()
            if k not in ("figure", "phase_seconds", "phase_fractions")
        }
        phases = extra.get("phase_seconds")
        records.append(new_record(
            str(benchmark_id),
            b.get("name", "?"),
            timing={
                "mean_s": stats.get("mean"),
                "median_s": stats.get("median"),
                "min_s": stats.get("min"),
                "max_s": stats.get("max"),
                "std_s": stats.get("stddev"),
                "repeats": stats.get("rounds"),
            },
            params=params,
            host=host,
            context={"source": "pytest-benchmark"},
            phases=phases if isinstance(phases, dict) else None,
        ))
    return records


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.report",
        description="Summarize a pytest-benchmark JSON file by figure.",
    )
    parser.add_argument("json_path", help="output of --benchmark-json")
    parser.add_argument(
        "--normalize",
        metavar="OUT",
        help="also convert the records into a normalized *.bench.json "
             "results file at OUT (schema usable by repro-bench trend)",
    )
    args = parser.parse_args(argv)
    summarize(load_records(args.json_path))
    if args.normalize:
        from repro.bench.schema import write_results

        records = normalize_records(args.json_path)
        write_results(args.normalize, records,
                      meta={"source": "pytest-benchmark",
                            "input": args.json_path})
        print(f"\n{len(records)} normalized record(s) -> {args.normalize}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
