"""Terminal line charts for the figure drivers.

The paper's figures are line charts (time vs threads) and stacked bars
(phase breakdowns).  This module renders both as plain-text axes so
``python -m repro.bench.figures <fig> --plot`` shows the *shape* of each
figure directly in the terminal — who is above whom, where curves flatten,
where they cross — without any plotting dependency.

The renderer is deliberately simple: monotone x values, linear y axis
starting at 0 (matching the paper's axes), one ASCII marker per series.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["line_chart", "stacked_bar_chart", "ratio_chart"]

_MARKERS = "ox+*#@%&"


def line_chart(
    title: str,
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 18,
    x_label: str = "threads",
    y_label: str = "seconds",
) -> str:
    """Render one line chart as a string.

    Parameters
    ----------
    title:
        Chart heading.
    x_values:
        Shared x coordinates (e.g. thread counts), increasing.
    series:
        Mapping of series name to y values (same length as ``x_values``).
    width, height:
        Plot-area size in character cells.
    x_label, y_label:
        Axis captions.

    Returns
    -------
    str
        Multi-line chart with a legend.
    """
    if not series:
        raise ValueError("series must be non-empty")
    xs = [float(x) for x in x_values]
    if len(xs) < 2:
        raise ValueError("need at least two x values")
    if any(b <= a for a, b in zip(xs, xs[1:])):
        raise ValueError("x_values must be strictly increasing")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected {len(xs)}"
            )
    y_max = max(max(ys) for ys in series.values())
    if y_max <= 0:
        raise ValueError("all series are non-positive")
    x_min, x_max = xs[0], xs[-1]

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        col = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((1.0 - y / y_max) * (height - 1))
        return max(min(row, height - 1), 0), max(min(col, width - 1), 0)

    for idx, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        # Light linear interpolation between measured points keeps curve
        # shape visible even with few x samples.
        for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
            steps = max(
                abs(cell(x1, y1)[1] - cell(x0, y0)[1]), 1
            )
            for s in range(steps + 1):
                t = s / steps
                r, c = cell(x0 + t * (x1 - x0), y0 + t * (y1 - y0))
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for x, y in zip(xs, ys):
            r, c = cell(x, y)
            grid[r][c] = marker

    lines = [title]
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_max:8.3g} |"
        elif i == height - 1:
            label = f"{0.0:8.3g} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    x_axis = (
        f"{'':9}{x_min:<8.3g}"
        + f"{x_label:^{max(width - 16, 1)}}"
        + f"{x_max:>8.3g}"
    )
    lines.append(x_axis)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"         [{y_label}]  {legend}")
    return "\n".join(lines)


def stacked_bar_chart(
    title: str,
    bars: dict[str, dict[str, float]],
    width: int = 40,
    symbols: dict[str, str] | None = None,
) -> str:
    """Render horizontal stacked bars (the Figure 6/8 breakdowns).

    Parameters
    ----------
    title:
        Chart heading.
    bars:
        Mapping of bar label to {phase: seconds}.
    width:
        Character width of the longest bar.
    symbols:
        Optional phase -> fill character mapping; defaults assign from a
        fixed palette in first-seen order.

    Returns
    -------
    str
        Multi-line chart with a phase legend.
    """
    if not bars:
        raise ValueError("bars must be non-empty")
    phases: list[str] = []
    for parts in bars.values():
        for p in parts:
            if p not in phases:
                phases.append(p)
    if symbols is None:
        palette = "#=+:%@*o"
        symbols = {p: palette[i % len(palette)] for i, p in enumerate(phases)}
    total_max = max(sum(parts.values()) for parts in bars.values())
    if total_max <= 0:
        raise ValueError("all bars are empty")
    label_w = max(len(k) for k in bars)
    lines = [title]
    for label, parts in bars.items():
        total = sum(parts.values())
        bar = ""
        for p in phases:
            v = parts.get(p, 0.0)
            cells = round(v / total_max * width)
            bar += symbols[p] * cells
        lines.append(f"{label:>{label_w}} |{bar:<{width}}| {total:.4g}s")
    legend = "   ".join(f"{symbols[p]} {p}" for p in phases)
    lines.append(f"{'':{label_w}}  {legend}")
    return "\n".join(lines)


def ratio_chart(
    title: str,
    ratios: dict[str, float],
    width: int = 40,
    ratio_max: float = 2.0,
) -> str:
    """Render current/baseline ratios around a ``1.0x`` pivot column.

    The trend report's visual: bars to the right of the pivot are
    slowdowns, bars to the left are speedups, so a wall of ``>`` is
    immediately legible as "this PR got slower".  Ratios beyond
    ``ratio_max`` (or below its reciprocal) are clamped and annotated
    with their numeric value, which is always printed.
    """
    if not ratios:
        raise ValueError("ratios must be non-empty")
    half = width // 2
    label_w = max(len(k) for k in ratios)
    lines = [title]
    for label, ratio in ratios.items():
        if ratio <= 0:
            raise ValueError(f"ratio for {label!r} must be positive")
        if ratio >= 1.0:
            frac = min((ratio - 1.0) / (ratio_max - 1.0), 1.0)
            cells = round(frac * half)
            bar = " " * half + "|" + ">" * cells + " " * (half - cells)
        else:
            frac = min((1.0 / ratio - 1.0) / (ratio_max - 1.0), 1.0)
            cells = round(frac * half)
            bar = (" " * (half - cells) + "<" * cells + "|" + " " * half)
        lines.append(f"{label:>{label_w}} {bar} {ratio:.2f}x")
    lines.append(f"{'':{label_w}} {'faster':>{half}}|{'slower':<{half}}")
    return "\n".join(lines)
