"""One-shot migration of the legacy ad-hoc result files.

PRs 2, 4 and 5 left three mutually incompatible hand-distilled JSON
files in ``results/`` (``BENCH_backend.json``, ``BENCH_dimtree.json``,
``BENCH_tune.json``).  This module converts them into the normalized
:mod:`repro.bench.schema` records — so those measurements survive as
trend baselines — and parks the originals under ``results/archive/``.

Case ids are mapped onto the *current* registry case vocabulary wherever
a counterpart exists (e.g. legacy ``backend-krp``/``thread`` becomes
``pool-overhead`` case ``backend-krp/thread/T2``), because the trend
tracker matches on ``(benchmark, case, host_class)`` exactly; legacy
cases with no modern counterpart keep a legacy-shaped id rather than
being dropped.  The original case name and file are preserved in
``context`` for archaeology.
"""

from __future__ import annotations

import json
import os
import shutil

from repro.bench.schema import new_record, write_results

__all__ = ["migrate_results", "LEGACY_FILES"]

#: legacy filename -> (registry benchmark id, output filename)
LEGACY_FILES = {
    "BENCH_backend.json": ("pool-overhead", "backend.bench.json"),
    "BENCH_dimtree.json": ("dimtree", "dimtree.bench.json"),
    "BENCH_tune.json": ("autotune", "tune.bench.json"),
}


def _timing(entry: dict) -> dict:
    """Timing block from a legacy ``{mean_s, median_s, min_s, rounds}``."""
    return {
        "mean_s": entry.get("mean_s"),
        "median_s": entry.get("median_s", entry.get("mean_s")),
        "min_s": entry.get("min_s"),
        "repeats": entry.get("rounds"),
    }


def _record(benchmark, case, entry, *, params, host, legacy_file, legacy_case):
    return new_record(
        benchmark,
        case,
        timing=_timing(entry),
        params=params,
        host=host,
        context={
            "source": "migrated",
            "legacy_file": legacy_file,
            "legacy_case": legacy_case,
        },
    )


def _convert_backend(doc: dict, legacy_file: str) -> list[dict]:
    host = doc["host"]
    T = int(doc.get("workers", 2))
    records = []
    for legacy_case, entry in doc["cases"].items():
        for backend in ("thread", "process"):
            timing = entry.get(backend)
            if not isinstance(timing, dict):
                continue
            # legacy "backend-overhead" is today's backend-region case
            stem = ("backend-region" if legacy_case == "backend-overhead"
                    else legacy_case)
            records.append(_record(
                "pool-overhead", f"{stem}/{backend}/T{T}", timing,
                params={"backend": backend,
                        "threads": int(timing.get("threads", T))},
                host=host, legacy_file=legacy_file, legacy_case=legacy_case,
            ))
    return records


def _convert_dimtree(doc: dict, legacy_file: str) -> list[dict]:
    host = doc["host"]
    records = []
    for legacy_case, entry in doc["cases"].items():
        if legacy_case.startswith("cpals-"):
            # "cpals-3D-T1" -> kind "cpals-3D", strategies per-mode/dimtree
            kind, _, tpart = legacy_case.rpartition("-")
            for strategy in ("per-mode", "dimtree"):
                timing = entry.get(strategy)
                if not isinstance(timing, dict):
                    continue
                T = int(timing.get("threads", 1))
                records.append(_record(
                    "dimtree", f"{kind}/{strategy}/T{T}", timing,
                    params={"shape": entry.get("shape"),
                            "rank": entry.get("rank"),
                            "strategy": strategy, "threads": T},
                    host=host, legacy_file=legacy_file,
                    legacy_case=legacy_case,
                ))
        elif legacy_case.startswith("node-mttkrp"):
            for variant in ("columnwise", "batched"):
                timing = entry.get(variant)
                if not isinstance(timing, dict):
                    continue
                T = int(timing.get("threads", 1))
                # single-thread node cases match the suite's "node/<variant>"
                case = (f"node/{variant}" if T == 1
                        else f"node/{variant}/T{T}")
                records.append(_record(
                    "dimtree", case, timing,
                    params={"shape": entry.get("shape"),
                            "rank": entry.get("rank"),
                            "variant": variant, "threads": T},
                    host=host, legacy_file=legacy_file,
                    legacy_case=legacy_case,
                ))
    return records


def _convert_tune(doc: dict, legacy_file: str) -> list[dict]:
    host = doc["host"]
    # legacy pytest-parametrized names -> current suite case ids
    case_map = {
        "cold_tuning_cost": "cold",
        "warm_dispatch_overhead": "warm",
        "static_policy_vs_tuned_pick[auto]": "policy/auto",
        "static_policy_vs_tuned_pick[autotune]": "policy/autotune",
    }
    records = []
    for legacy_case, entry in doc["cases"].items():
        case = case_map.get(legacy_case, legacy_case)
        params = dict(entry.get("extra") or {})
        params.setdefault("shape", doc.get("shape"))
        params.setdefault("rank", doc.get("rank"))
        records.append(_record(
            "autotune", case, entry,
            params=params, host=host,
            legacy_file=legacy_file, legacy_case=legacy_case,
        ))
    return records


_CONVERTERS = {
    "BENCH_backend.json": _convert_backend,
    "BENCH_dimtree.json": _convert_dimtree,
    "BENCH_tune.json": _convert_tune,
}


def migrate_results(
    results_dir: str,
    *,
    archive: bool = True,
) -> list[str]:
    """Convert every legacy ``BENCH_*.json`` found in ``results_dir``.

    Writes the normalized ``*.bench.json`` next to them, moves the
    originals to ``results_dir/archive/`` (when ``archive``), and returns
    the paths written.  Already-migrated directories are a no-op.
    """
    written: list[str] = []
    for legacy_name, (benchmark, out_name) in LEGACY_FILES.items():
        legacy_path = os.path.join(results_dir, legacy_name)
        if not os.path.exists(legacy_path):
            continue
        with open(legacy_path, encoding="utf-8") as fh:
            doc = json.load(fh)
        records = _CONVERTERS[legacy_name](doc, legacy_name)
        out_path = os.path.join(results_dir, out_name)
        write_results(out_path, records, meta={
            "benchmark": benchmark,
            "migrated_from": legacy_name,
            "legacy_description": doc.get("benchmark"),
            "interpretation": doc.get("interpretation"),
        })
        written.append(out_path)
        if archive:
            archive_dir = os.path.join(results_dir, "archive")
            os.makedirs(archive_dir, exist_ok=True)
            shutil.move(legacy_path, os.path.join(archive_dir, legacy_name))
    return written
