"""One normalized result schema for every benchmark this repo runs.

Before this module, results were scattered across three mutually
incompatible ad-hoc JSON layouts (``results/BENCH_backend.json``,
``BENCH_dimtree.json``, ``BENCH_tune.json``) plus context-free
``fig*.txt`` text dumps, so "is PR N+1 faster than PR N?" required
archaeology.  Every producer — the :mod:`repro.bench.registry` runners,
the pytest-benchmark suite, the :mod:`repro.bench.migrate` converter —
now emits the **same versioned record**, and :mod:`repro.bench.trend`
consumes nothing else.

A record is a plain JSON-able dict::

    {
      "schema_version": 1,
      "benchmark": "fig5",               # registry id
      "case": "N=3/n=1/twostep/T2",      # one measured point
      "params": {"shape": [194,194,194], "rank": 25, "threads": 2, ...},
      "timing": {"mean_s": ..., "median_s": ..., "min_s": ..., "max_s": ...,
                 "std_s": ..., "repeats": 5},
      "counters": {"flops": ..., "bytes_read": ..., "bytes_written": ...,
                   "gemm_calls": ..., "imbalance_max": ..., ...},
      "host": host_fingerprint(),        # incl. git_rev / git_dirty
      "context": {"source": "repro-bench", "scale": 0.002, ...},
      "created_unix": 1754000000.0
    }

``timing.median_s`` is the headline number (the paper's MTTKRP protocol);
``counters`` carries the analytic FLOP/byte totals and load-imbalance
captured from :mod:`repro.obs`, which is what makes an
achieved-vs-lower-bound ratio reportable at all.

Result *files* wrap a list of records with a small envelope
(:func:`write_results` / :func:`load_results`); committed history lives
as ``results/*.bench.json``.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Iterable, Sequence

from repro.bench.env import host_fingerprint

__all__ = [
    "SCHEMA_VERSION",
    "RESULTS_SUFFIX",
    "SchemaError",
    "new_record",
    "record_from_point",
    "timing_from_stats",
    "validate_record",
    "validate_results_doc",
    "write_results",
    "load_results",
    "load_history",
]

SCHEMA_VERSION = 1

#: Filename suffix that marks a normalized results file inside ``results/``.
RESULTS_SUFFIX = ".bench.json"

_RESULTS_KIND = "repro-bench-results"

_TIMING_KEYS = ("mean_s", "median_s", "min_s", "max_s", "std_s")


class SchemaError(ValueError):
    """A record or results document violates the normalized schema."""


def timing_from_stats(samples: Sequence[float]) -> dict:
    """Timing-stats dict from raw per-repeat wall times (seconds)."""
    if not samples:
        raise SchemaError("timing needs at least one sample")
    xs = sorted(float(s) for s in samples)
    n = len(xs)
    mean = sum(xs) / n
    mid = n // 2
    median = xs[mid] if n % 2 else 0.5 * (xs[mid - 1] + xs[mid])
    std = (sum((x - mean) ** 2 for x in xs) / n) ** 0.5
    return {
        "mean_s": mean,
        "median_s": median,
        "min_s": xs[0],
        "max_s": xs[-1],
        "std_s": std,
        "repeats": n,
    }


def new_record(
    benchmark: str,
    case: str,
    *,
    timing: dict,
    params: dict | None = None,
    counters: dict | None = None,
    host: dict | None = None,
    context: dict | None = None,
    phases: dict | None = None,
) -> dict:
    """Build one schema-valid record (host fingerprint captured here).

    ``timing`` must contain at least ``median_s``; missing stats are
    filled with ``None`` so consumers can rely on the key set.
    """
    filled = {key: timing.get(key) for key in _TIMING_KEYS}
    filled["repeats"] = timing.get("repeats")
    if filled["median_s"] is None and filled["mean_s"] is not None:
        filled["median_s"] = filled["mean_s"]
    record = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": str(benchmark),
        "case": str(case),
        "params": dict(params or {}),
        "timing": filled,
        "counters": {k: float(v) for k, v in (counters or {}).items()},
        "host": dict(host) if host is not None else host_fingerprint(),
        "context": dict(context or {}),
        "created_unix": time.time(),
    }
    if phases:
        record["phases"] = {k: float(v) for k, v in phases.items()}
    validate_record(record)
    return record


def record_from_point(
    benchmark: str,
    case: str,
    point,
    *,
    params: dict | None = None,
    context: dict | None = None,
    host: dict | None = None,
) -> dict:
    """Record from a harness point dataclass (``run_*_point`` output).

    Points expose ``stats`` / ``counters`` since the registry refactor;
    older callers that only have ``seconds`` still get a valid record
    with a single-sample timing block.
    """
    stats = dict(getattr(point, "stats", None) or {})
    if not stats:
        seconds = getattr(point, "seconds", None)
        if seconds is None:
            seconds = getattr(point, "seconds_per_iteration")
        stats = {"median_s": float(seconds), "repeats": 1}
    phases = dict(getattr(point, "phases", None) or {})
    return new_record(
        benchmark,
        case,
        timing=stats,
        params=params,
        counters=dict(getattr(point, "counters", None) or {}),
        context=context,
        host=host,
        phases=phases or None,
    )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def validate_record(record: dict) -> dict:
    """Validate one record against the schema; returns it unchanged.

    Raises :class:`SchemaError` naming the offending field — the error
    messages are part of the contract (tests assert on them).
    """
    _require(isinstance(record, dict), "record must be a dict")
    for key in ("schema_version", "benchmark", "case", "params", "timing",
                "counters", "host", "context", "created_unix"):
        _require(key in record, f"record missing required key {key!r}")
    _require(
        record["schema_version"] == SCHEMA_VERSION,
        f"unsupported schema_version {record['schema_version']!r} "
        f"(supported: {SCHEMA_VERSION})",
    )
    for key in ("benchmark", "case"):
        _require(
            isinstance(record[key], str) and record[key],
            f"record[{key!r}] must be a non-empty string",
        )
    for key in ("params", "timing", "counters", "host", "context"):
        _require(isinstance(record[key], dict), f"record[{key!r}] must be a dict")
    timing = record["timing"]
    _require(
        isinstance(timing.get("median_s"), (int, float)),
        "record['timing']['median_s'] must be a number",
    )
    _require(timing["median_s"] >= 0, "record['timing']['median_s'] must be >= 0")
    for key in _TIMING_KEYS:
        value = timing.get(key)
        _require(
            value is None or isinstance(value, (int, float)),
            f"record['timing'][{key!r}] must be a number or null",
        )
    for key, value in record["counters"].items():
        _require(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            f"record['counters'][{key!r}] must be numeric",
        )
    host = record["host"]
    for key in ("cpus", "platform", "python"):
        _require(key in host, f"record['host'] missing key {key!r}")
    _require(
        isinstance(record["created_unix"], (int, float)),
        "record['created_unix'] must be a unix timestamp",
    )
    return record


def validate_results_doc(doc: dict) -> list[dict]:
    """Validate a results-file envelope; returns its records."""
    _require(isinstance(doc, dict), "results document must be a dict")
    _require(
        doc.get("kind") == _RESULTS_KIND,
        f"results document kind must be {_RESULTS_KIND!r}, "
        f"got {doc.get('kind')!r}",
    )
    _require(
        doc.get("schema_version") == SCHEMA_VERSION,
        f"unsupported schema_version {doc.get('schema_version')!r} "
        f"(supported: {SCHEMA_VERSION})",
    )
    records = doc.get("records")
    _require(isinstance(records, list), "results document 'records' must be a list")
    for record in records:
        validate_record(record)
    return records


def write_results(path: str, records: Iterable[dict], *, meta: dict | None = None) -> str:
    """Write records to a normalized results file; returns the path.

    Records are validated first — an invalid record must fail the writer,
    not the eventual trend run that tries to load it.
    """
    records = [validate_record(r) for r in records]
    doc = {
        "kind": _RESULTS_KIND,
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "meta": dict(meta or {}),
        "records": records,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=False)
        fh.write("\n")
    return path


def load_results(path: str) -> list[dict]:
    """Load and validate one normalized results file."""
    with open(path, encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path}: not valid JSON ({exc})") from exc
    try:
        return validate_results_doc(doc)
    except SchemaError as exc:
        raise SchemaError(f"{path}: {exc}") from exc


def load_history(
    results_dir: str,
    *,
    exclude: Sequence[str] = (),
    strict: bool = False,
) -> list[dict]:
    """All records from every ``*.bench.json`` under ``results_dir``.

    Files that fail validation are skipped with a warning unless
    ``strict`` (history may span schema versions; one bad file must not
    brick the scoreboard).  ``exclude`` removes specific paths — the
    trend CLI uses it so a current-run file is not its own baseline.
    """
    import warnings

    excluded = {os.path.abspath(p) for p in exclude}
    records: list[dict] = []
    if not os.path.isdir(results_dir):
        return records
    for name in sorted(os.listdir(results_dir)):
        if not name.endswith(RESULTS_SUFFIX):
            continue
        path = os.path.join(results_dir, name)
        if os.path.abspath(path) in excluded:
            continue
        try:
            for record in load_results(path):
                record = dict(record)
                record.setdefault("context", {})
                record["context"] = {**record["context"], "file": name}
                records.append(record)
        except SchemaError as exc:
            if strict:
                raise
            warnings.warn(f"skipping unreadable results file: {exc}",
                          stacklevel=2)
    return records
