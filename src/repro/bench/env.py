"""Host and repository provenance for benchmark records.

Every speed number this repository publishes is only interpretable
relative to *where* and *when* it was measured: a 1-CPU container and a
12-core Xeon produce different truths, and a dirty working tree produces
numbers no commit can vouch for.  This module captures that context once,
in one shape, for every producer — the ``repro-bench`` registry runners,
the pytest-benchmark suite under ``benchmarks/``, and the figure text
exports — replacing the hand-rolled ``{"cpus": ..., "platform": ...}``
dicts that previously drifted apart across ``results/BENCH_*.json``.

Three layers:

* :func:`host_fingerprint` — the full provenance dict stored inside each
  normalized record (cpus, platform, machine, python, BLAS threads, git
  rev + dirty flag);
* :func:`host_class` — a deliberately coarse equivalence key
  (``"x86_64-1cpu"``) used by :mod:`repro.bench.trend` to decide which
  committed baselines are comparable to the current host;
* :func:`provenance_header` — a ``#``-commented text header stamped onto
  ``results/fig*.txt`` exports so the text tables stop being context-free.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys

__all__ = [
    "blas_threads",
    "git_revision",
    "host_class",
    "host_class_of",
    "host_fingerprint",
    "provenance_header",
]


def blas_threads() -> int | None:
    """Thread count of the loaded BLAS, if discoverable.

    Checks the conventional environment knobs first (they are what the
    benchmark protocol pins), then falls back to threadpoolctl if it
    happens to be installed.  Returns ``None`` when nothing is pinned —
    an honest "library default" rather than a guess.
    """
    for var in ("OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS", "OMP_NUM_THREADS"):
        value = os.environ.get(var, "").strip()
        if value.isdigit():
            return int(value)
    try:  # pragma: no cover - optional dependency
        from threadpoolctl import threadpool_info

        for pool in threadpool_info():
            if pool.get("user_api") == "blas":
                return int(pool["num_threads"])
    except Exception:
        pass
    return None


def git_revision(repo_dir: str | None = None) -> tuple[str | None, bool]:
    """``(rev, dirty)`` of the repository containing ``repo_dir``.

    ``rev`` is the full commit hash, or ``None`` outside a git checkout
    (records remain writable from an installed wheel — provenance is then
    simply unknown).  ``dirty`` is True when tracked files have
    uncommitted modifications: a number measured on a dirty tree must
    never be mistaken for the committed revision's number.
    """
    cwd = repo_dir or os.path.dirname(os.path.abspath(__file__))
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if rev.returncode != 0:
            return None, False
        status = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else False
        return rev.stdout.strip(), dirty
    except (OSError, subprocess.SubprocessError):  # pragma: no cover
        return None, False


def host_fingerprint(repo_dir: str | None = None) -> dict:
    """The normalized host/provenance dict stored in every record.

    Keys (all always present; unknown values are ``None``):

    ``cpus``, ``machine``, ``platform``, ``python``, ``blas_threads``,
    ``git_rev``, ``git_dirty``.
    """
    rev, dirty = git_revision(repo_dir)
    return {
        "cpus": os.cpu_count(),
        "machine": platform.machine() or None,
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "blas_threads": blas_threads(),
        "git_rev": rev,
        "git_dirty": dirty,
    }


def host_class_of(host: dict) -> str:
    """Coarse comparability key for a stored host dict.

    ``"<machine>-<cpus>cpu"`` — two runs are trend-comparable only when
    they share an ISA and a core count.  Tolerates the pre-schema
    ``results/BENCH_*.json`` host dicts, which recorded only ``cpus`` and
    a ``platform.platform()`` string: the machine token is recovered from
    the platform string's ``-<machine>-with-`` segment.
    """
    machine = host.get("machine")
    if not machine:
        plat = str(host.get("platform", ""))
        for token in ("x86_64", "aarch64", "arm64", "ppc64le", "s390x"):
            if token in plat:
                machine = token
                break
    cpus = host.get("cpus")
    return f"{machine or 'unknown'}-{cpus if cpus else '?'}cpu"


def host_class(repo_dir: str | None = None) -> str:
    """:func:`host_class_of` for the current host."""
    return host_class_of(host_fingerprint(repo_dir))


def provenance_header(
    *,
    scale: float | None = None,
    threads: object = None,
    extra: dict | None = None,
    comment: str = "#",
) -> str:
    """Commented provenance block for text exports (``results/fig*.txt``).

    One ``comment``-prefixed line per fact; the figure tables follow
    unchanged below, so existing text-diff workflows keep working.
    """
    fp = host_fingerprint()
    rev = fp["git_rev"] or "unknown"
    if fp["git_dirty"]:
        rev += "+dirty"
    lines = [
        f"{comment} generated by repro.bench (schema provenance header)",
        f"{comment} git_rev: {rev}",
        f"{comment} host: cpus={fp['cpus']} machine={fp['machine']} "
        f"python={fp['python']} blas_threads={fp['blas_threads']}",
        f"{comment} platform: {fp['platform']}",
    ]
    if scale is not None:
        lines.append(f"{comment} scale: {scale}")
    if threads is not None:
        if isinstance(threads, (list, tuple)):
            threads = ",".join(str(t) for t in threads)
        lines.append(f"{comment} threads: {threads}")
    for key, value in (extra or {}).items():
        lines.append(f"{comment} {key}: {value}")
    return "\n".join(lines) + "\n"
