"""Figure 7: per-iteration CP-ALS time — our implementation vs the
Tensor-Toolbox-style reference, over CP ranks, on the fMRI tensors.

Paper protocol: 3D (225 x 59 x 19900) and 4D (225 x 59 x 200 x 200)
application tensors, C in {10,...,30}; claims up to 2x sequential and
6.7x/7.4x parallel speedup over Matlab at C = 30.

Run: ``pytest benchmarks/test_fig7_cpals.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_threads, record_paper_context
from repro.cpd.cp_als import cp_als
from repro.data.fmri import synthetic_fmri
from repro.data.workloads import FMRI_REDUCED_4D
from repro.reference.tensor_toolbox import cp_als_ttb
from repro.tensor.generate import random_factors

pytestmark = pytest.mark.bench

_THREADS = bench_threads()
_RANKS = (10, 20, 30)  # subset of the paper's {10,15,20,25,30} grid

_dataset_cache: dict = {}


def _tensors():
    if "data" not in _dataset_cache:
        t, s, r, _ = FMRI_REDUCED_4D
        data = synthetic_fmri(t, s, r, rank=5, rng=0)
        _dataset_cache["data"] = {
            "3D": data.to_3way(),
            "4D": data.tensor,
        }
    return _dataset_cache["data"]


@pytest.mark.parametrize("kind", ["3D", "4D"])
@pytest.mark.parametrize("rank", _RANKS, ids=lambda r: f"C{r}")
@pytest.mark.parametrize("impl", ["repro", "ttb"])
@pytest.mark.parametrize("threads", _THREADS, ids=lambda t: f"T{t}")
def test_fig7_cpals_iteration(benchmark, kind, rank, impl, threads):
    X = _tensors()[kind]
    init = random_factors(X.shape, rank, rng=1)
    record_paper_context(
        benchmark,
        figure="fig7",
        tensor=kind,
        shape=list(X.shape),
        rank=rank,
        implementation=impl,
        threads=threads,
    )

    if impl == "repro":

        def one_iteration():
            cp_als(
                X, rank, n_iter_max=1, tol=0.0, init=init,
                num_threads=threads,
            )

    else:

        def one_iteration():
            cp_als_ttb(
                X, rank, n_iter_max=1, tol=0.0, init=init,
                num_threads=threads,
            )

    benchmark(one_iteration)
