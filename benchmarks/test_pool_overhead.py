"""Microbenchmarks of the parallel runtime substrate itself.

Quantifies the costs the algorithm benchmarks build on: parallel-region
launch/join overhead of the persistent pool (the analog of OpenMP's region
overhead, a constant in the machine model), the tree reduction, and the
static-vs-dynamic schedule trade on imbalanced work.

Run: ``pytest benchmarks/test_pool_overhead.py --benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_threads, cached_problem, record_paper_context
from repro.parallel.pool import get_pool
from repro.parallel.reduction import allocate_private, parallel_reduce

pytestmark = pytest.mark.bench

_THREADS = [t for t in bench_threads() if t > 1] or [2]


@pytest.mark.parametrize("threads", _THREADS, ids=lambda t: f"T{t}")
def test_region_launch_overhead(benchmark, threads):
    """Cost of an empty parallel region (launch + join)."""
    pool = get_pool(threads)
    record_paper_context(
        benchmark, ablation="pool-overhead", kind="empty-region",
        threads=threads,
    )
    benchmark(pool.parallel_for, lambda t, a, b: None, threads)


@pytest.mark.parametrize("threads", _THREADS, ids=lambda t: f"T{t}")
def test_reduction_overhead(benchmark, threads):
    """Tree reduction of private 256x25 outputs (Alg. 3 line 19's shape)."""
    pool = get_pool(threads)
    buffers = allocate_private(threads, (256, 25))
    record_paper_context(
        benchmark, ablation="pool-overhead", kind="reduce",
        threads=threads,
    )

    def kernel():
        buffers[:] = 1.0
        parallel_reduce(buffers, pool)

    benchmark(kernel)


@pytest.mark.parametrize("schedule", ["static", "dynamic"])
def test_schedule_on_imbalanced_work(benchmark, schedule):
    """Static vs dynamic scheduling on a skewed workload: item i costs
    O(i) — the worst case for contiguous static blocks."""
    T = max(_THREADS)
    pool = get_pool(T)
    n_items = 64
    sizes = [64 * (i + 1) for i in range(n_items)]  # linearly growing work
    mats = [np.ones((s, 16)) for s in sizes]
    out = [np.empty(16) for _ in range(n_items)]

    def work(t, start, stop):
        for i in range(start, stop):
            out[i][:] = mats[i].sum(axis=0)

    record_paper_context(
        benchmark, ablation="pool-schedule", schedule=schedule, threads=T,
    )
    if schedule == "static":
        benchmark(pool.parallel_for, work, n_items)
    else:
        benchmark(
            lambda: pool.parallel_for(
                work, n_items, schedule="dynamic", chunk=2
            )
        )


# --------------------------------------------------------------------- #
# Thread vs process backend
# --------------------------------------------------------------------- #

_BACKENDS = ("thread", "process")


def _noop_kernel(worker, start, stop):
    pass


def _py_loop_kernel(worker, start, stop, mats, out):
    # Deliberately Python-bound: per-row work too small for BLAS to
    # dominate, so the GIL serializes it on the thread backend.
    a, b = mats
    for i in range(start, stop):
        out[i] = a[i % a.shape[0]] @ b[i % b.shape[0]]


@pytest.mark.parametrize("backend", _BACKENDS)
def test_backend_region_overhead(benchmark, backend):
    """Empty-region launch/join cost per backend (process pays pipe IPC)."""
    from repro.parallel.backend import get_executor

    T = max(_THREADS)
    ex = get_executor(T, backend=backend)
    record_paper_context(
        benchmark, ablation="backend-overhead", kind="empty-region",
        backend=backend, threads=T,
    )
    benchmark(ex.parallel_for, _noop_kernel, T)


@pytest.mark.parametrize("backend", _BACKENDS)
def test_backend_python_bound_loop(benchmark, backend):
    """GIL-bound Python loop: the case the process backend exists for."""
    from repro.parallel.backend import get_executor

    T = max(_THREADS)
    ex = get_executor(T, backend=backend)
    rng = np.random.default_rng(0)
    mats = (rng.standard_normal((64, 48)), rng.standard_normal((64, 48)))
    out = ex.allocate_shared((512,))
    record_paper_context(
        benchmark, ablation="backend-python-loop", backend=backend, threads=T,
    )
    benchmark(
        lambda: ex.parallel_for(_py_loop_kernel, 512, args=(mats, out))
    )


@pytest.mark.parametrize("backend", _BACKENDS)
def test_backend_krp_with_reuse(benchmark, backend):
    """Row-wise KRP with reuse (Alg. 1) through each backend."""
    from repro.core.krp_parallel import khatri_rao_parallel
    from repro.parallel.backend import get_executor

    T = max(_THREADS)
    ex = get_executor(T, backend=backend)
    rng = np.random.default_rng(1)
    mats = [rng.standard_normal((48, 16)) for _ in range(3)]
    record_paper_context(
        benchmark, ablation="backend-krp", backend=backend, threads=T,
    )
    benchmark(lambda: khatri_rao_parallel(mats, executor=ex))


@pytest.mark.parametrize("backend", _BACKENDS)
def test_backend_mttkrp_onestep(benchmark, backend):
    """Full GEMM-phase MTTKRP per backend (parity target: same BLAS)."""
    from repro.core.dispatch import mttkrp

    T = max(_THREADS)
    X, U = cached_problem((48, 32, 24), 16)
    record_paper_context(
        benchmark, ablation="backend-mttkrp", backend=backend, threads=T,
        method="onestep",
    )
    benchmark(
        lambda: mttkrp(X, U, 1, method="onestep", num_threads=T, backend=backend)
    )
