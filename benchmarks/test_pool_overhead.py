"""Microbenchmarks of the parallel runtime substrate itself.

Quantifies the costs the algorithm benchmarks build on: parallel-region
launch/join overhead of the persistent pool (the analog of OpenMP's region
overhead, a constant in the machine model), the tree reduction, and the
static-vs-dynamic schedule trade on imbalanced work.

Run: ``pytest benchmarks/test_pool_overhead.py --benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_threads, record_paper_context
from repro.parallel.pool import get_pool
from repro.parallel.reduction import allocate_private, parallel_reduce

_THREADS = [t for t in bench_threads() if t > 1] or [2]


@pytest.mark.parametrize("threads", _THREADS, ids=lambda t: f"T{t}")
def test_region_launch_overhead(benchmark, threads):
    """Cost of an empty parallel region (launch + join)."""
    pool = get_pool(threads)
    record_paper_context(
        benchmark, ablation="pool-overhead", kind="empty-region",
        threads=threads,
    )
    benchmark(pool.parallel_for, lambda t, a, b: None, threads)


@pytest.mark.parametrize("threads", _THREADS, ids=lambda t: f"T{t}")
def test_reduction_overhead(benchmark, threads):
    """Tree reduction of private 256x25 outputs (Alg. 3 line 19's shape)."""
    pool = get_pool(threads)
    buffers = allocate_private(threads, (256, 25))
    record_paper_context(
        benchmark, ablation="pool-overhead", kind="reduce",
        threads=threads,
    )

    def kernel():
        buffers[:] = 1.0
        parallel_reduce(buffers, pool)

    benchmark(kernel)


@pytest.mark.parametrize("schedule", ["static", "dynamic"])
def test_schedule_on_imbalanced_work(benchmark, schedule):
    """Static vs dynamic scheduling on a skewed workload: item i costs
    O(i) — the worst case for contiguous static blocks."""
    T = max(_THREADS)
    pool = get_pool(T)
    n_items = 64
    sizes = [64 * (i + 1) for i in range(n_items)]  # linearly growing work
    mats = [np.ones((s, 16)) for s in sizes]
    out = [np.empty(16) for _ in range(n_items)]

    def work(t, start, stop):
        for i in range(start, stop):
            out[i][:] = mats[i].sum(axis=0)

    record_paper_context(
        benchmark, ablation="pool-schedule", schedule=schedule, threads=T,
    )
    if schedule == "static":
        benchmark(pool.parallel_for, work, n_items)
    else:
        benchmark(
            lambda: pool.parallel_for(
                work, n_items, schedule="dynamic", chunk=2
            )
        )
