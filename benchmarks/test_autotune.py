"""Autotuner economics: cold tuning cost vs warm dispatch overhead.

Three quantities decide whether ``method="autotune"`` is worth it:

* the one-time **cold cost** of measuring the candidate set for a key;
* the per-call **warm overhead** of a cache hit over calling the picked
  kernel directly (should be microseconds — a dict lookup plus a span);
* the gap between the tuned pick and the static ``"auto"`` policy
  (Section 5.3.3), which is the payoff that amortizes the cold cost.

Run: ``pytest benchmarks/test_autotune.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_threads, cached_problem, record_paper_context
from repro.core.dispatch import mttkrp
from repro.tune import TuningCache, autotune, reset_cache

pytestmark = pytest.mark.bench

_SHAPE = (48, 32, 24)
_RANK = 16
_T = max(bench_threads())


@pytest.fixture(autouse=True)
def _in_memory_cache(monkeypatch):
    monkeypatch.delenv("REPRO_TUNE_CACHE", raising=False)
    reset_cache()
    yield
    reset_cache()


def test_cold_tuning_cost(benchmark):
    """Full candidate measurement for one (shape, rank, mode) key."""
    X, U = cached_problem(_SHAPE, _RANK)
    record_paper_context(
        benchmark, ablation="autotune", kind="cold", threads=_T,
        shape=list(_SHAPE), rank=_RANK,
    )

    def cold():
        cache = TuningCache(None)  # fresh every round: always a miss
        autotune(X, U, 1, num_threads=_T, cache=cache, repeats=1)

    benchmark(cold)


def test_warm_dispatch_overhead(benchmark):
    """``method="autotune"`` with a warm cache vs the kernel it picked."""
    X, U = cached_problem(_SHAPE, _RANK)
    cache = TuningCache(None)
    record = autotune(X, U, 1, num_threads=_T, cache=cache, repeats=1)
    record_paper_context(
        benchmark, ablation="autotune", kind="warm", threads=_T,
        pick=record.label,
    )
    benchmark(
        lambda: autotune(X, U, 1, num_threads=_T, cache=cache)
    )


@pytest.mark.parametrize("method", ["auto", "autotune"])
def test_static_policy_vs_tuned_pick(benchmark, method):
    """End-to-end MTTKRP under the static Section 5.3.3 policy vs the
    measured pick (warm cache), same operands and thread count."""
    X, U = cached_problem(_SHAPE, _RANK)
    if method == "autotune":
        mttkrp(X, U, 1, method="autotune", num_threads=_T)  # warm the cache
    record_paper_context(
        benchmark, ablation="autotune", kind="policy", method=method,
        threads=_T,
    )
    benchmark(lambda: mttkrp(X, U, 1, method=method, num_threads=_T))
