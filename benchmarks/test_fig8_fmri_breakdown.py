"""Figure 8: MTTKRP time breakdown on the (synthetic) fMRI tensors.

As Figure 6 but on the application tensors, whose modes have very
different sizes — the paper highlights that KRP cost is relatively larger
for the small subject mode (n=1, I_1=59), and that the 2-step algorithm
beats the baseline on mode 1 by 2.8x/3.5x in parallel.

Run: ``pytest benchmarks/test_fig8_fmri_breakdown.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_paper_context
from repro.core.dispatch import mttkrp
from repro.core.mttkrp_baseline import mttkrp_gemm_lower_bound
from repro.data.fmri import synthetic_fmri
from repro.data.workloads import FMRI_REDUCED_4D
from repro.tensor.generate import random_factors
from repro.util.timing import PhaseTimer

pytestmark = pytest.mark.bench

_cache: dict = {}


def _problem(kind: str):
    if kind not in _cache:
        t, s, r, _ = FMRI_REDUCED_4D
        data = synthetic_fmri(t, s, r, rank=5, rng=0)
        X = data.to_3way() if kind == "3D" else data.tensor
        _cache[kind] = (X, random_factors(X.shape, 25, rng=1))
    return _cache[kind]


def _cases():
    out = []
    for kind, N in (("3D", 3), ("4D", 4)):
        for n in range(N):
            out.append((kind, n, "onestep"))
            if 0 < n < N - 1:
                out.append((kind, n, "twostep"))
            out.append((kind, n, "gemm-baseline"))
    return out


@pytest.mark.parametrize(
    "kind,mode,algorithm",
    _cases(),
    ids=lambda v: str(v),
)
def test_fig8_fmri_mttkrp(benchmark, kind, mode, algorithm):
    X, U = _problem(kind)
    timer = PhaseTimer()
    if algorithm == "gemm-baseline":
        scratch: dict = {}
        mttkrp_gemm_lower_bound(
            X, U, mode, num_threads=1, timers=timer, _scratch=scratch
        )
        record_paper_context(
            benchmark,
            figure="fig8",
            tensor=kind,
            mode=mode,
            algorithm=algorithm,
            phase_seconds={k: round(v, 6) for k, v in timer.snapshot().items()},
        )
        benchmark(
            mttkrp_gemm_lower_bound,
            X,
            U,
            mode,
            num_threads=1,
            _scratch=scratch,
        )
    else:
        mttkrp(X, U, mode, method=algorithm, num_threads=1, timers=timer)
        record_paper_context(
            benchmark,
            figure="fig8",
            tensor=kind,
            mode=mode,
            algorithm=algorithm,
            phase_seconds={k: round(v, 6) for k, v in timer.snapshot().items()},
        )
        benchmark(mttkrp, X, U, mode, method=algorithm, num_threads=1)
