"""Dimension-tree CP-ALS vs the per-mode baseline (Fig. 7 workloads).

Two levels of comparison, matching the paper's III.C argument:

* whole-iteration: ``cp_als(..., mode_strategy="per-mode")`` vs
  ``"dimtree"`` on the Fig. 7 fMRI proxies (3-way and the 4-way tensor).
  The dimension tree replaces N full MTTKRPs per iteration with two big
  partial contractions plus N cheap node-level updates (~N/2 fewer large
  GEMMs).
* second-level only: the batched ``node_mttkrp`` (one GEMM over all rank
  columns) vs the retained column-wise reference
  ``node_mttkrp_columnwise`` (one GEMV per rank column), on the same
  node tensor.

Results are distilled into ``results/BENCH_dimtree.json``.

Run: ``pytest benchmarks/test_fig_dimtree.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_threads, record_paper_context
from repro.core.dimtree import (
    left_partial,
    node_mttkrp,
    node_mttkrp_columnwise,
    split_point,
)
from repro.cpd.cp_als import cp_als
from repro.data.fmri import synthetic_fmri
from repro.data.workloads import FMRI_REDUCED_4D
from repro.parallel.workspace import Workspace
from repro.tensor.generate import random_factors

pytestmark = pytest.mark.bench

_THREADS = bench_threads()
_RANK = 20  # mid-point of the paper's C grid; deep enough to batch over

_cache: dict = {}


def _tensors():
    if "data" not in _cache:
        t, s, r, _ = FMRI_REDUCED_4D
        data = synthetic_fmri(t, s, r, rank=5, rng=0)
        _cache["data"] = {"3D": data.to_3way(), "4D": data.tensor}
    return _cache["data"]


def _node_problem():
    """A warm left-partial node of the 4-way proxy, plus its factors."""
    if "node" not in _cache:
        X = _tensors()["4D"]
        m = split_point(X.ndim)
        factors = random_factors(X.shape, _RANK, rng=1)
        node = left_partial(X, factors, m, num_threads=1)
        _cache["node"] = (node, factors[:m])
    return _cache["node"]


@pytest.mark.parametrize("kind", ["3D", "4D"])
@pytest.mark.parametrize("strategy", ["per-mode", "dimtree"])
@pytest.mark.parametrize("threads", _THREADS, ids=lambda t: f"T{t}")
def test_dimtree_cpals_iteration(benchmark, kind, strategy, threads):
    """One CP-ALS iteration per strategy on the Fig. 7 tensors."""
    X = _tensors()[kind]
    init = random_factors(X.shape, _RANK, rng=1)
    record_paper_context(
        benchmark,
        figure="fig7-dimtree",
        tensor=kind,
        shape=list(X.shape),
        rank=_RANK,
        strategy=strategy,
        threads=threads,
    )

    def one_iteration():
        cp_als(
            X, _RANK, n_iter_max=1, tol=0.0, init=init,
            num_threads=threads, mode_strategy=strategy,
        )

    benchmark(one_iteration)


@pytest.mark.parametrize("impl", ["columnwise", "batched"])
def test_node_mttkrp_second_level(benchmark, impl):
    """Second-level node update alone: batched GEMM vs per-column GEMV."""
    node, facs = _node_problem()
    record_paper_context(
        benchmark,
        figure="fig7-dimtree",
        ablation="node-mttkrp",
        shape=list(node.shape),
        rank=_RANK,
        implementation=impl,
        threads=1,
    )
    if impl == "columnwise":
        benchmark(lambda: node_mttkrp_columnwise(node, facs, 0))
    else:
        with Workspace() as ws:
            benchmark(
                lambda: node_mttkrp(
                    node, facs, 0, num_threads=1, workspace=ws
                )
            )


@pytest.mark.parametrize("impl", ["columnwise", "batched"])
@pytest.mark.parametrize(
    "threads", [t for t in _THREADS if t > 1] or [2], ids=lambda t: f"T{t}"
)
def test_node_mttkrp_second_level_parallel(benchmark, impl, threads):
    """Same node update with the executor engaged (batched path only
    parallelizes; column-wise stays serial by construction)."""
    node, facs = _node_problem()
    record_paper_context(
        benchmark,
        figure="fig7-dimtree",
        ablation="node-mttkrp-parallel",
        shape=list(node.shape),
        rank=_RANK,
        implementation=impl,
        threads=threads,
    )
    if impl == "columnwise":
        benchmark(lambda: node_mttkrp_columnwise(node, facs, 0))
    else:
        with Workspace() as ws:
            benchmark(
                lambda: node_mttkrp(
                    node, facs, 0, num_threads=threads, workspace=ws
                )
            )
