"""Figure 5: MTTKRP time of 1-step / 2-step / DGEMM-baseline per mode.

Paper protocol: cubic tensors with N in {3,4,5,6} modes (~750M entries),
C = 25, 1..12 threads; median of repeated runs.  Claims: sequentially
2-step ~ baseline and 1-step <= 2x baseline; in parallel both proposed
algorithms beat the baseline by 2-4.7x for N > 3.

Run: ``pytest benchmarks/test_fig5_scaling.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    bench_scale,
    bench_threads,
    cached_problem,
    record_paper_context,
)
from repro.core.dispatch import mttkrp
from repro.core.mttkrp_baseline import mttkrp_gemm_lower_bound
from repro.data.workloads import FIG5_WORKLOADS

pytestmark = pytest.mark.bench

_THREADS = bench_threads()


def _modes_for(N: int, algorithm: str):
    if algorithm == "twostep":
        return range(1, N - 1)
    return range(N)


@pytest.mark.parametrize("wl", FIG5_WORKLOADS, ids=lambda w: f"N{w.N}")
@pytest.mark.parametrize("algorithm", ["onestep", "twostep", "gemm-baseline"])
@pytest.mark.parametrize("threads", _THREADS, ids=lambda t: f"T{t}")
def test_fig5_mttkrp(benchmark, wl, algorithm, threads):
    shape = wl.shape(bench_scale())
    # One representative mode per (N, algorithm) class keeps the matrix
    # manageable: mode 0 for externals, the first internal mode otherwise;
    # the full per-mode sweep is in `python -m repro.bench.figures fig5`.
    mode = 1 if algorithm == "twostep" else 0
    if algorithm == "twostep" and wl.N < 3:
        pytest.skip("2-step needs an internal mode")
    X, U = cached_problem(shape, wl.C)
    record_paper_context(
        benchmark,
        figure="fig5",
        N=wl.N,
        shape=list(shape),
        C=wl.C,
        algorithm=algorithm,
        mode=mode,
        threads=threads,
    )
    if algorithm == "gemm-baseline":
        scratch: dict = {}
        benchmark(
            mttkrp_gemm_lower_bound,
            X,
            U,
            mode,
            num_threads=threads,
            _scratch=scratch,
        )
    else:
        benchmark(mttkrp, X, U, mode, method=algorithm, num_threads=threads)


@pytest.mark.parametrize("wl", FIG5_WORKLOADS, ids=lambda w: f"N{w.N}")
@pytest.mark.parametrize("mode_kind", ["external", "internal"])
def test_fig5_per_mode_sequential(benchmark, wl, mode_kind):
    """Sequential per-mode-kind coverage: internal modes exercise the
    block-loop path, external the column-block path."""
    shape = wl.shape(bench_scale())
    mode = 0 if mode_kind == "external" else wl.N // 2
    X, U = cached_problem(shape, wl.C)
    record_paper_context(
        benchmark,
        figure="fig5",
        N=wl.N,
        algorithm="onestep",
        mode=mode,
        mode_kind=mode_kind,
        threads=1,
    )
    benchmark(mttkrp, X, U, mode, method="onestep", num_threads=1)
