"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **2-step side choice** (I^L vs I^R rule): forced-left vs forced-right
   vs auto on a skewed tensor — the rule should match the better side.
2. **CP-ALS dispatch policy** (1-step external / 2-step internal): the
   paper's policy vs all-1-step.
3. **Zero-copy views vs explicit reorder**: 1-step vs the full
   straightforward baseline (including its reorder), isolating what
   avoiding tensor reordering buys.
4. **KRP reuse**: Algorithm 1 vs the naive schedule at Z = 4 (the case
   with the most reuse).

Run: ``pytest benchmarks/test_ablations.py --benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_scale, cached_problem, record_paper_context
from repro.core.dispatch import mttkrp
from repro.core.krp_parallel import khatri_rao_parallel
from repro.core.mttkrp_twostep import choose_side, mttkrp_twostep
from repro.cpd.cp_als import cp_als
from repro.data.workloads import scaled_shape
from repro.tensor.generate import random_factors


# ------------------------------------------------------------------ #
# Ablation 1: 2-step ordering rule
# ------------------------------------------------------------------ #

_SKEWED = scaled_shape((40, 80, 400), 25 * bench_scale())


@pytest.mark.parametrize("side", ["auto", "left", "right"])
def test_ablation_twostep_side(benchmark, side):
    X, U = cached_problem(_SKEWED, 16, seed=3)
    record_paper_context(
        benchmark,
        ablation="twostep-side",
        shape=list(_SKEWED),
        side=side,
        rule_choice=choose_side(_SKEWED, 1),
    )
    benchmark(mttkrp_twostep, X, U, 1, side=side, num_threads=1)


# ------------------------------------------------------------------ #
# Ablation 2: CP-ALS per-mode dispatch policy
# ------------------------------------------------------------------ #

_CP_SHAPE = scaled_shape((165,) * 4, 2 * bench_scale())


@pytest.mark.parametrize("method", ["auto", "onestep", "baseline"])
def test_ablation_cpals_dispatch(benchmark, method):
    X, _ = cached_problem(_CP_SHAPE, 16, seed=4)
    init = random_factors(_CP_SHAPE, 16, rng=5)
    record_paper_context(
        benchmark, ablation="cpals-dispatch", method=method,
        shape=list(_CP_SHAPE),
    )
    benchmark(
        lambda: cp_als(
            X, 16, n_iter_max=1, tol=0.0, init=init, method=method,
            num_threads=1,
        )
    )


# ------------------------------------------------------------------ #
# Ablation 2b: cross-mode reuse (the paper's proposed future work)
# ------------------------------------------------------------------ #


@pytest.mark.parametrize("strategy", ["per-mode", "dimtree"])
def test_ablation_cpals_dimtree(benchmark, strategy):
    """Per-iteration CP-ALS: the paper predicts the dimension-tree scheme
    cuts ~50% (3D) / 2x (4D) — this measures it on a 4-way tensor."""
    X, _ = cached_problem(_CP_SHAPE, 16, seed=4)
    init = random_factors(_CP_SHAPE, 16, rng=5)
    record_paper_context(
        benchmark, ablation="cpals-dimtree", strategy=strategy,
        shape=list(_CP_SHAPE),
    )
    benchmark(
        lambda: cp_als(
            X, 16, n_iter_max=1, tol=0.0, init=init,
            mode_strategy=strategy, num_threads=1,
        )
    )


# ------------------------------------------------------------------ #
# Ablation 3: avoid-reorder (views) vs explicit reorder
# ------------------------------------------------------------------ #

_REORDER_SHAPE = scaled_shape((60,) * 5, 8 * bench_scale())


@pytest.mark.parametrize("method", ["onestep", "twostep", "baseline"])
def test_ablation_reorder_avoidance(benchmark, method):
    X, U = cached_problem(_REORDER_SHAPE, 25, seed=6)
    record_paper_context(
        benchmark, ablation="reorder", method=method,
        shape=list(_REORDER_SHAPE),
    )
    benchmark(mttkrp, X, U, 2, method=method, num_threads=1)


# ------------------------------------------------------------------ #
# Ablation 4: KRP reuse at maximum depth
# ------------------------------------------------------------------ #


@pytest.mark.parametrize("schedule", ["reuse", "naive"])
def test_ablation_krp_depth4(benchmark, schedule):
    rows = max(int(2e7 * bench_scale()), 16)
    d = max(int(round(rows ** 0.25)), 2)
    rng = np.random.default_rng(7)
    mats = [rng.random((d, 25)) for _ in range(4)]
    record_paper_context(
        benchmark, ablation="krp-reuse", Z=4, schedule=schedule,
        rows=d**4,
    )
    benchmark(khatri_rao_parallel, mats, num_threads=1, schedule=schedule)


# ------------------------------------------------------------------ #
# Ablation 5: blocked (constant-memory) 2-step vs unblocked
# ------------------------------------------------------------------ #


from repro.core.mttkrp_twostep import mttkrp_twostep, mttkrp_twostep_blocked  # noqa: E402

_BLOCK_SHAPE = scaled_shape((60,) * 5, 8 * bench_scale())


@pytest.mark.parametrize(
    "budget",
    ["unblocked", 10**7, 10**5, 10**4],
    ids=lambda b: str(b),
)
def test_ablation_blocked_twostep(benchmark, budget):
    """Vannieuwenhoven et al.'s claim (relayed by the paper): capping the
    2-step intermediate's footprint does not hurt performance.  Sweep the
    memory budget downward and compare against the unblocked algorithm."""
    X, U = cached_problem(_BLOCK_SHAPE, 25, seed=8)
    record_paper_context(
        benchmark, ablation="blocked-twostep", budget=str(budget),
        shape=list(_BLOCK_SHAPE),
    )
    if budget == "unblocked":
        benchmark(mttkrp_twostep, X, U, 2, num_threads=1)
    else:
        benchmark(
            mttkrp_twostep_blocked, X, U, 2, budget, num_threads=1
        )


# ------------------------------------------------------------------ #
# Ablation 6: private outputs + reduction vs lock-based accumulation
# ------------------------------------------------------------------ #


import threading  # noqa: E402

from repro.core.krp import krp_rows  # noqa: E402
from repro.core.krp_parallel import khatri_rao_parallel  # noqa: E402
from repro.parallel.pool import get_pool  # noqa: E402
from repro.parallel.reduction import (  # noqa: E402
    allocate_private,
    parallel_reduce,
)
from repro.tensor.layout import mode_products  # noqa: E402

pytestmark = pytest.mark.bench

_ACC_SHAPE = scaled_shape((60,) * 5, 8 * bench_scale())
_ACC_THREADS = 4


def _internal_mttkrp_with_accumulation(X, U, n, strategy):
    """Internal-mode 1-step with either the paper's private+reduce scheme
    or a shared output protected by a lock (the alternative the paper
    rejects for its write conflicts)."""
    p = mode_products(X.shape, n)
    rank = U[0].shape[1]
    KL = khatri_rao_parallel(
        [np.asarray(U[k]) for k in range(n - 1, -1, -1)],
        num_threads=_ACC_THREADS,
    )
    right_ops = [np.asarray(U[k]) for k in range(X.ndim - 1, n, -1)]
    blocks3 = X.mode_blocks_view(n)
    pool = get_pool(_ACC_THREADS)

    # Identical chunking for both strategies so the measurement isolates
    # the accumulation scheme (private buffers + reduction vs shared+lock).
    chunk = 8

    if strategy == "private":
        out = allocate_private(_ACC_THREADS, (p.size, rank))

        def work(t, j0, j1):
            kr = krp_rows(right_ops, j0, j1)
            Kt = kr[:, None, :] * KL[None, :, :]
            out[t] += np.matmul(blocks3[j0:j1], Kt).sum(axis=0)

        pool.parallel_for(work, p.right, schedule="dynamic", chunk=chunk)
        return parallel_reduce(out, pool)

    M = np.zeros((p.size, rank))
    lock = threading.Lock()

    def work_locked(t, j0, j1):
        kr = krp_rows(right_ops, j0, j1)
        Kt = kr[:, None, :] * KL[None, :, :]
        contrib = np.matmul(blocks3[j0:j1], Kt).sum(axis=0)
        # Every chunk's contribution serializes through the lock — the
        # write-conflict cost the paper's design avoids.
        with lock:
            M[...] += contrib

    pool.parallel_for(work_locked, p.right, schedule="dynamic", chunk=chunk)
    return M


@pytest.mark.parametrize("strategy", ["private", "locked"])
def test_ablation_accumulation(benchmark, strategy):
    """DESIGN decision 5: per-thread private outputs + tree reduction
    (the paper's choice) vs a shared output under a lock.

    On a single core the lock is uncontended, so the two should measure
    within noise of each other (the private variant's only extra cost is
    the reduction); with real thread parallelism every chunk's update
    serializes through the lock and the gap opens with T."""
    X, U = cached_problem(_ACC_SHAPE, 25, seed=9)
    record_paper_context(
        benchmark, ablation="accumulation", strategy=strategy,
        threads=_ACC_THREADS, shape=list(_ACC_SHAPE),
    )
    # Correctness guard: both must match the dispatching implementation.
    ref = mttkrp(X, U, 2, method="onestep", num_threads=1)
    got = _internal_mttkrp_with_accumulation(X, U, 2, strategy)
    np.testing.assert_allclose(got, ref, atol=1e-8)
    benchmark(_internal_mttkrp_with_accumulation, X, U, 2, strategy)
