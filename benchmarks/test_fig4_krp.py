"""Figure 4: Khatri-Rao product — Reuse (Alg. 1) vs Naive vs STREAM.

Paper protocol: Z in {2,3,4} input matrices with equal row dims whose
product is ~2e7, C in {25,50} columns, times over 1..12 threads; claims:
reuse beats naive by 1.5-2.5x (Z>=3), KRP runs at ~STREAM bandwidth, and
parallel speedup is 6.6-8.3x at 12 threads.

Run: ``pytest benchmarks/test_fig4_krp.py --benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_scale, bench_threads, record_paper_context
from repro.bench.stream import stream_buffers, stream_scale
from repro.core.krp_parallel import khatri_rao_parallel
from repro.data.workloads import FIG4_WORKLOADS
from repro.util import prod

pytestmark = pytest.mark.bench

_THREADS = bench_threads()


def _materials(wl):
    dims = wl.dims(bench_scale())
    rng = np.random.default_rng(0)
    mats = [rng.random((d, wl.C)) for d in dims]
    out = np.empty((prod(dims), wl.C))
    return mats, out


@pytest.mark.parametrize("wl", FIG4_WORKLOADS, ids=lambda w: f"Z{w.Z}-C{w.C}")
@pytest.mark.parametrize("threads", _THREADS, ids=lambda t: f"T{t}")
@pytest.mark.parametrize("schedule", ["reuse", "naive"])
def test_fig4_krp(benchmark, wl, threads, schedule):
    mats, out = _materials(wl)
    record_paper_context(
        benchmark,
        figure="fig4",
        series=f"{wl.Z}-{schedule.capitalize()}",
        Z=wl.Z,
        C=wl.C,
        threads=threads,
        output_rows=out.shape[0],
    )
    benchmark(
        khatri_rao_parallel,
        mats,
        num_threads=threads,
        out=out,
        schedule=schedule,
    )


@pytest.mark.parametrize(
    "C", sorted({w.C for w in FIG4_WORKLOADS}), ids=lambda c: f"C{c}"
)
@pytest.mark.parametrize("threads", _THREADS, ids=lambda t: f"T{t}")
def test_fig4_stream_reference(benchmark, C, threads):
    rows = max(int(2e7 * bench_scale()), 4)
    src, dst = stream_buffers(rows * C)
    record_paper_context(
        benchmark, figure="fig4", series="STREAM", C=C, threads=threads
    )
    benchmark(stream_scale, src, dst, num_threads=threads)
