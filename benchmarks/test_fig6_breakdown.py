"""Figure 6: MTTKRP time breakdown (DGEMM / KRP / REDUCE / DGEMV) per mode.

The benchmark measures whole-call time and attaches the per-phase split of
one instrumented call to ``extra_info`` (pytest-benchmark records it in
its JSON output), matching the stacked bars of Figure 6.

Run: ``pytest benchmarks/test_fig6_breakdown.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale, cached_problem, record_paper_context
from repro.core.dispatch import mttkrp
from repro.data.workloads import FIG5_WORKLOADS
from repro.util.timing import PhaseTimer

pytestmark = pytest.mark.bench


@pytest.mark.parametrize("wl", FIG5_WORKLOADS, ids=lambda w: f"N{w.N}")
@pytest.mark.parametrize("algorithm", ["onestep", "twostep"])
@pytest.mark.parametrize("mode_kind", ["external", "internal"])
def test_fig6_breakdown(benchmark, wl, algorithm, mode_kind):
    shape = wl.shape(bench_scale())
    mode = 0 if mode_kind == "external" else wl.N // 2
    if algorithm == "twostep" and mode_kind == "external":
        pytest.skip("2-step is defined for internal modes only")
    X, U = cached_problem(shape, wl.C)

    timer = PhaseTimer()
    mttkrp(X, U, mode, method=algorithm, num_threads=1, timers=timer)
    total = timer.total()
    record_paper_context(
        benchmark,
        figure="fig6",
        N=wl.N,
        algorithm=algorithm,
        mode=mode,
        threads=1,
        phase_seconds={k: round(v, 6) for k, v in timer.snapshot().items()},
        phase_fractions={
            k: round(v / total, 4) for k, v in timer.snapshot().items()
        },
    )
    benchmark(mttkrp, X, U, mode, method=algorithm, num_threads=1)
