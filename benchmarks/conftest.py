"""Shared configuration for the benchmark suite.

Every figure of the paper has a benchmark module here.  Sizes are the
paper's workloads scaled volumetrically by ``REPRO_BENCH_SCALE`` (default
0.004 — a few million tensor entries, seconds per module on one core; set
it to 1.0 on a machine with ~8 GiB free and many cores to run paper-scale).

Thread counts default to (1, 2) so the parallel code paths are exercised
even on a single-core container; set ``REPRO_BENCH_THREADS=1,2,4,8,12`` on
real hardware.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.tensor.generate import random_factors, random_tensor


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.004"))


def bench_threads() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_THREADS", "1,2")
    return tuple(int(x) for x in raw.split(","))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


_tensor_cache: dict = {}


def cached_problem(shape: tuple[int, ...], rank: int, seed: int = 0):
    """Tensor+factors cache shared across benchmarks in one session."""
    key = (shape, rank, seed)
    if key not in _tensor_cache:
        X = random_tensor(shape, rng=seed)
        U = random_factors(shape, rank, rng=seed + 1)
        _tensor_cache[key] = (X, U)
    return _tensor_cache[key]


def record_paper_context(benchmark, **info) -> None:
    """Attach experiment metadata to the pytest-benchmark record."""
    benchmark.extra_info.update(info)


def pytest_collection_modifyitems(items) -> None:
    # Everything under benchmarks/ carries the `bench` marker, so
    # `pytest -m "not bench"` excludes the slow suite even when invoked
    # with an explicit path that bypasses testpaths.
    for item in items:
        item.add_marker(pytest.mark.bench)


def pytest_benchmark_update_machine_info(config, machine_info):
    from repro.bench.env import host_fingerprint

    machine_info["repro_bench_scale"] = bench_scale()
    machine_info["repro_bench_threads"] = list(bench_threads())
    # Full provenance (git rev, BLAS threads, host class) embedded in the
    # pytest-benchmark JSON; repro.bench.report --normalize lifts it into
    # the normalized records' host field.
    machine_info["repro_host"] = host_fingerprint()


np.random.seed(0)  # some libraries consult the legacy global state
